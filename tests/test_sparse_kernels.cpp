// Tests for the runtime-dispatched vector kernel layer (DESIGN.md §14):
// ISA resolution and the PDX_KERNEL override contract, bitwise identity
// of every bitwise-class lane kernel against the scalar reference,
// bounded error of the opt-in ulp-class kernels, plan-level bitwise
// identity of forced-scalar vs forced-vector vs auto-dispatched plans
// across strategies, thread counts and layouts, the off-by-default
// ulp_tolerance contract, FactorPlan's kernel-dispatched scatter
// updates, and the scalar-vs-vector kernel race telemetry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/kernels.hpp"
#include "sparse/factor_plan.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace sp = pdx::sparse;
namespace kn = pdx::sparse::kernels;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
namespace core = pdx::core;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_double(-1.0, 1.0);
  return v;
}

constexpr sp::ExecutionStrategy kStrategies[] = {
    sp::ExecutionStrategy::kSerial, sp::ExecutionStrategy::kDoacross,
    sp::ExecutionStrategy::kLevelBarrier,
    sp::ExecutionStrategy::kBlockedHybrid};

sp::PlanOptions plan_opts(sp::ExecutionStrategy s, unsigned nth,
                          sp::PlanLayout layout, kn::KernelChoice kernel) {
  sp::PlanOptions o;
  o.nthreads = nth;
  o.strategy = s;
  o.layout = layout;
  o.kernel = kernel;
  return o;
}

}  // namespace

// --- ISA resolution ----------------------------------------------------

TEST(KernelDispatch, ResolveIsaHonorsOverrides) {
  const kn::KernelIsa hw = kn::resolve_isa(nullptr);
  // "scalar" always pins the fallback; empty/auto/unknown defer to CPUID.
  EXPECT_EQ(kn::resolve_isa("scalar"), kn::KernelIsa::kScalar);
  EXPECT_EQ(kn::resolve_isa(""), hw);
  EXPECT_EQ(kn::resolve_isa("auto"), hw);
  EXPECT_EQ(kn::resolve_isa("definitely-not-an-isa"), hw);
  // Requesting an ISA the machine lacks clamps to scalar; requesting the
  // one it has returns it.
  const kn::KernelIsa avx2 = kn::resolve_isa("avx2");
  const kn::KernelIsa neon = kn::resolve_isa("neon");
  EXPECT_TRUE(avx2 == kn::KernelIsa::kAvx2 || avx2 == kn::KernelIsa::kScalar);
  EXPECT_TRUE(neon == kn::KernelIsa::kNeon || neon == kn::KernelIsa::kScalar);
  EXPECT_EQ(avx2 == kn::KernelIsa::kAvx2, hw == kn::KernelIsa::kAvx2);
  EXPECT_EQ(neon == kn::KernelIsa::kNeon, hw == kn::KernelIsa::kNeon);
}

TEST(KernelDispatch, TablesExistForEveryIsa) {
  EXPECT_EQ(kn::scalar_ops().isa, kn::KernelIsa::kScalar);
  // ops_for falls back to scalar for ISAs the build lacks bodies for;
  // whatever comes back must self-describe correctly.
  for (kn::KernelIsa isa : {kn::KernelIsa::kScalar, kn::KernelIsa::kAvx2,
                            kn::KernelIsa::kNeon}) {
    const kn::LaneOps& ops = kn::ops_for(isa);
    EXPECT_TRUE(ops.isa == isa || ops.isa == kn::KernelIsa::kScalar);
    ASSERT_NE(ops.axpy, nullptr);
    ASSERT_NE(ops.row_axpy, nullptr);
    ASSERT_NE(ops.div_inplace, nullptr);
    ASSERT_NE(ops.dot, nullptr);
    ASSERT_NE(ops.gather_axpy, nullptr);
    ASSERT_NE(ops.gather_axpy_fma, nullptr);
  }
  EXPECT_EQ(kn::dispatched_ops().isa, kn::dispatched_isa());
}

// --- lane kernel unit tests (bitwise class) ----------------------------

TEST(KernelLanes, AxpyAndDivBitwiseMatchScalarAtEveryLength) {
  const kn::LaneOps& ref = kn::scalar_ops();
  // Cover sub-vector tails and multi-vector bodies for both AVX2 (4
  // lanes) and NEON (2 lanes).
  for (kn::KernelIsa isa : {kn::KernelIsa::kAvx2, kn::KernelIsa::kNeon}) {
    const kn::LaneOps& ops = kn::ops_for(isa);
    for (index_t k = 0; k <= 19; ++k) {
      const auto x = random_vec(static_cast<std::size_t>(k), 11 + k);
      auto t_ref = random_vec(static_cast<std::size_t>(k), 23 + k);
      auto t_vec = t_ref;
      const double a = 1.7320508075688772;
      ref.axpy(t_ref.data(), x.data(), a, k);
      ops.axpy(t_vec.data(), x.data(), a, k);
      for (index_t c = 0; c < k; ++c) {
        ASSERT_EQ(t_ref[static_cast<std::size_t>(c)],
                  t_vec[static_cast<std::size_t>(c)])
            << kn::to_string(isa) << " axpy k=" << k << " lane " << c;
      }
      const double d = -0.3333333333333333;
      ref.div_inplace(t_ref.data(), d, k);
      ops.div_inplace(t_vec.data(), d, k);
      for (index_t c = 0; c < k; ++c) {
        ASSERT_EQ(t_ref[static_cast<std::size_t>(c)],
                  t_vec[static_cast<std::size_t>(c)])
            << kn::to_string(isa) << " div k=" << k << " lane " << c;
      }
    }
  }
}

TEST(KernelLanes, RowAxpyBitwiseMatchesPerDepScalarLoops) {
  // The fused row kernel must equal the per-dependence scalar loops
  // bitwise for every (cnt, k) shape — it only reorders the loop nest,
  // never any column's update sequence.
  const index_t n_strip_rows = 40;
  for (kn::KernelIsa isa : {kn::KernelIsa::kAvx2, kn::KernelIsa::kNeon}) {
    const kn::LaneOps& ops = kn::ops_for(isa);
    for (index_t k : {index_t{1}, index_t{4}, index_t{7}, index_t{8},
                      index_t{16}, index_t{19}}) {
      for (index_t cnt : {index_t{0}, index_t{1}, index_t{5}, index_t{9}}) {
        const auto vals =
            random_vec(static_cast<std::size_t>(cnt), 31 + cnt + k);
        const auto xs =
            random_vec(static_cast<std::size_t>(n_strip_rows * k), 37 + k);
        std::vector<index_t> cols;
        for (index_t j = 0; j < cnt; ++j) {
          cols.push_back((j * 11) % n_strip_rows);
        }
        auto t_ref = random_vec(static_cast<std::size_t>(k), 41 + cnt);
        auto t_fused = t_ref;
        // Reference: the historical executor order (j outer, c inner).
        for (index_t j = 0; j < cnt; ++j) {
          const double a = vals[static_cast<std::size_t>(j)];
          const double* x = xs.data() + cols[static_cast<std::size_t>(j)] * k;
          for (index_t c = 0; c < k; ++c) {
            t_ref[static_cast<std::size_t>(c)] -= a * x[c];
          }
        }
        ops.row_axpy(t_fused.data(), vals.data(), cols.data(), cnt,
                     xs.data(), k);
        for (index_t c = 0; c < k; ++c) {
          ASSERT_EQ(t_ref[static_cast<std::size_t>(c)],
                    t_fused[static_cast<std::size_t>(c)])
              << kn::to_string(isa) << " row_axpy k=" << k << " cnt=" << cnt
              << " lane " << c;
        }
      }
    }
  }
}

TEST(KernelLanes, GatherAxpyBitwiseMatchesScalar) {
  // Disjoint tgt/src position sets with distinct targets, as the
  // contract requires — shuffled so the gathers are genuinely scattered.
  const index_t cnt = 37;
  const std::size_t w_len = 128;
  std::vector<index_t> tgt, src;
  for (index_t t = 0; t < cnt; ++t) {
    tgt.push_back((t * 7) % 64);        // distinct (7 coprime to 64)
    src.push_back(64 + ((t * 5) % 64)); // disjoint from targets
  }
  for (kn::KernelIsa isa : {kn::KernelIsa::kAvx2, kn::KernelIsa::kNeon}) {
    const kn::LaneOps& ops = kn::ops_for(isa);
    for (index_t n : {index_t{0}, index_t{3}, index_t{4}, index_t{17}, cnt}) {
      auto w_ref = random_vec(w_len, 101 + n);
      auto w_vec = w_ref;
      const double a = 0.7071067811865476;
      kn::scalar_ops().gather_axpy(w_ref.data(), tgt.data(), src.data(), n, a);
      ops.gather_axpy(w_vec.data(), tgt.data(), src.data(), n, a);
      for (std::size_t i = 0; i < w_len; ++i) {
        ASSERT_EQ(w_ref[i], w_vec[i])
            << kn::to_string(isa) << " gather_axpy cnt=" << n << " at " << i;
      }
    }
  }
}

// --- ulp-class kernels: bounded error, never asserted bitwise ----------

TEST(KernelLanes, DotAndFusedGatherAreErrorBounded) {
  const index_t cnt = 257;  // odd: exercises every tail path
  const auto vals = random_vec(static_cast<std::size_t>(cnt), 7);
  const auto y = random_vec(512, 8);
  std::vector<index_t> cols;
  for (index_t j = 0; j < cnt; ++j) cols.push_back((j * 13) % 512);
  const double ref =
      kn::scalar_ops().dot(vals.data(), cols.data(), y.data(), cnt);
  for (kn::KernelIsa isa : {kn::KernelIsa::kAvx2, kn::KernelIsa::kNeon}) {
    const kn::LaneOps& ops = kn::ops_for(isa);
    const double got = ops.dot(vals.data(), cols.data(), y.data(), cnt);
    // Reassociation-level deviation only: the bound is generous (the
    // true deviation is a few ulp of the running sums) but fails loudly
    // on any indexing bug.
    EXPECT_NEAR(got, ref, 1e-12 * static_cast<double>(cnt))
        << kn::to_string(isa);

    std::vector<index_t> tgt, src;
    for (index_t t = 0; t < 31; ++t) {
      tgt.push_back(t);
      src.push_back(64 + t);
    }
    auto w_ref = random_vec(128, 9);
    auto w_fma = w_ref;
    kn::scalar_ops().gather_axpy(w_ref.data(), tgt.data(), src.data(), 31,
                                 0.5);
    ops.gather_axpy_fma(w_fma.data(), tgt.data(), src.data(), 31, 0.5);
    for (std::size_t i = 0; i < 128; ++i) {
      EXPECT_NEAR(w_ref[i], w_fma[i], 1e-14)
          << kn::to_string(isa) << " gather_axpy_fma at " << i;
    }
  }
}

// --- plan-level bitwise identity ---------------------------------------

TEST(KernelPlans, BatchSolvesBitwiseAcrossKernelChoices) {
  // The lane-parallel batch kernels are bitwise per column, so a
  // forced-vector plan must equal a forced-scalar plan must equal k
  // sequential fused solves — across strategies, widths and layouts.
  const sp::IluFactors f = sp::ilu0(gen::nine_point(13, 15));
  const index_t n = f.l.rows;
  const index_t k = 8;
  const auto b = random_vec(static_cast<std::size_t>(n * k), 42);
  std::vector<double> x_ref(b.size()), t(static_cast<std::size_t>(n));
  for (index_t c = 0; c < k; ++c) {
    sp::trisolve_lower_seq(
        f.l,
        std::span<const double>(b.data() + c * n, static_cast<std::size_t>(n)),
        t);
    sp::trisolve_upper_seq(f.u, t,
                           std::span<double>(x_ref.data() + c * n,
                                             static_cast<std::size_t>(n)));
  }

  for (sp::ExecutionStrategy s : kStrategies) {
    for (unsigned nth : {1u, 2u, 4u}) {
      for (sp::PlanLayout layout :
           {sp::PlanLayout::kPacked, sp::PlanLayout::kCsrView}) {
        sp::TrisolvePlan scalar(pool(), f.l, f.u,
                                plan_opts(s, nth, layout,
                                          kn::KernelChoice::kScalar));
        sp::TrisolvePlan vector(pool(), f.l, f.u,
                                plan_opts(s, nth, layout,
                                          kn::KernelChoice::kVector));
        std::vector<double> x_s(b.size(), 0.0), x_v(b.size(), 0.0);
        scalar.solve_batch(b, x_s, k, sp::BatchMode::kWavefrontInterleaved);
        vector.solve_batch(b, x_v, k, sp::BatchMode::kWavefrontInterleaved);
        for (index_t i = 0; i < n * k; ++i) {
          ASSERT_EQ(x_ref[static_cast<std::size_t>(i)],
                    x_s[static_cast<std::size_t>(i)])
              << core::to_string(s) << " nth=" << nth << " at " << i
              << " (scalar kernel vs sequential)";
          ASSERT_EQ(x_s[static_cast<std::size_t>(i)],
                    x_v[static_cast<std::size_t>(i)])
              << core::to_string(s) << " nth=" << nth << " at " << i
              << " (vector kernel vs scalar kernel)";
        }
      }
    }
  }
}

TEST(KernelPlans, AutoDispatchBitwiseMatchesForcedScalarAcrossEpochs) {
  // kAuto may race scalar-vs-vector across the first lane-kernel
  // dispatches; every exploration epoch must still be bitwise identical
  // to the pinned-scalar plan (the race is invisible to answers).
  const sp::IluFactors f = sp::ilu0(gen::five_point(15, 13));
  const index_t n = f.l.rows;
  const index_t k = 8;
  const auto b = random_vec(static_cast<std::size_t>(n * k), 77);

  for (sp::ExecutionStrategy s :
       {sp::ExecutionStrategy::kSerial, sp::ExecutionStrategy::kDoacross}) {
    sp::TrisolvePlan fixed(pool(), f.l, f.u,
                           plan_opts(s, 4, sp::PlanLayout::kPacked,
                                     kn::KernelChoice::kScalar));
    sp::TrisolvePlan autod(pool(), f.l, f.u,
                           plan_opts(s, 4, sp::PlanLayout::kPacked,
                                     kn::KernelChoice::kAuto));
    std::vector<double> x_f(b.size()), x_a(b.size());
    for (int epoch = 0; epoch < 8; ++epoch) {  // spans the whole race
      fixed.solve_batch(b, x_f, k, sp::BatchMode::kWavefrontInterleaved);
      autod.solve_batch(b, x_a, k, sp::BatchMode::kWavefrontInterleaved);
      for (index_t i = 0; i < n * k; ++i) {
        ASSERT_EQ(x_f[static_cast<std::size_t>(i)],
                  x_a[static_cast<std::size_t>(i)])
            << core::to_string(s) << " epoch=" << epoch << " at " << i;
      }
    }
  }
}

// --- ulp_tolerance contract --------------------------------------------

TEST(KernelPlans, UlpToleranceOffByDefaultAndBoundedWhenOn) {
  const sp::IluFactors f = sp::ilu0(gen::nine_point(14, 14));
  const index_t n = f.l.rows;
  const auto rhs = random_vec(static_cast<std::size_t>(n), 5);
  std::vector<double> z_seq(static_cast<std::size_t>(n)),
      t(static_cast<std::size_t>(n));
  sp::trisolve_lower_seq(f.l, rhs, t);
  sp::trisolve_upper_seq(f.u, t, z_seq);

  // Default options: single-RHS solves stay bitwise even on a vector
  // table — ulp_tolerance defaults to 0.
  sp::PlanOptions defaults = plan_opts(sp::ExecutionStrategy::kDoacross, 4,
                                       sp::PlanLayout::kPacked,
                                       kn::KernelChoice::kVector);
  ASSERT_EQ(defaults.ulp_tolerance, 0.0);
  sp::TrisolvePlan bitwise(pool(), f.l, f.u, defaults);
  std::vector<double> z(static_cast<std::size_t>(n));
  bitwise.solve(rhs, z);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
              z[static_cast<std::size_t>(i)])
        << "default (bitwise) row " << i;
  }

  // Opted in: answers may deviate at reassociation level, never more.
  sp::PlanOptions opted = defaults;
  opted.ulp_tolerance = 1e-12;
  sp::TrisolvePlan ulp(pool(), f.l, f.u, opted);
  std::vector<double> z_u(static_cast<std::size_t>(n));
  for (int epoch = 0; epoch < 3; ++epoch) {
    ulp.solve(rhs, z_u);
    for (index_t i = 0; i < n; ++i) {
      const double ref = z_seq[static_cast<std::size_t>(i)];
      ASSERT_NEAR(z_u[static_cast<std::size_t>(i)], ref,
                  1e-10 * (1.0 + std::abs(ref)))
          << "ulp row " << i;
    }
  }

  // Opted in on a pinned-scalar table: stays bitwise (the scalar dot is
  // the reference reduction).
  sp::PlanOptions scalar_opted = opted;
  scalar_opted.kernel = kn::KernelChoice::kScalar;
  sp::TrisolvePlan still_bitwise(pool(), f.l, f.u, scalar_opted);
  still_bitwise.solve(rhs, z);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
              z[static_cast<std::size_t>(i)])
        << "scalar+tolerance (still bitwise) row " << i;
  }
}

// --- FactorPlan kernel dispatch ----------------------------------------

TEST(KernelFactor, ScatterKernelsBitwiseAcrossChoicesAndStrategies) {
  const sp::Csr a = gen::nine_point(13, 13);
  const sp::IluFactors ref = sp::ilu0(a);

  for (sp::ExecutionStrategy s : kStrategies) {
    for (kn::KernelChoice kc :
         {kn::KernelChoice::kScalar, kn::KernelChoice::kVector,
          kn::KernelChoice::kAuto}) {
      sp::FactorPlanOptions o;
      o.nthreads = 4;
      o.strategy = s;
      o.kernel = kc;
      sp::FactorPlan plan(pool(), a, o);
      sp::IluFactors f = plan.allocate_factors();
      for (int epoch = 0; epoch < 6; ++epoch) {  // spans any kernel race
        plan.factorize(a, f);
        for (std::size_t i = 0; i < ref.l.val.size(); ++i) {
          ASSERT_EQ(ref.l.val[i], f.l.val[i])
              << core::to_string(s) << " kernel=" << kn::to_string(kc)
              << " epoch=" << epoch << " L value " << i;
        }
        for (std::size_t i = 0; i < ref.u.val.size(); ++i) {
          ASSERT_EQ(ref.u.val[i], f.u.val[i])
              << core::to_string(s) << " kernel=" << kn::to_string(kc)
              << " epoch=" << epoch << " U value " << i;
        }
      }
    }
  }
}

// --- kernel race telemetry ---------------------------------------------

TEST(KernelRace, RaceUnitLocksInArgminWinner) {
  kn::Race race;
  EXPECT_FALSE(race.active());
  EXPECT_EQ(race.winner(), kn::KernelChoice::kVector);  // default
  race.arm(2);
  ASSERT_TRUE(race.active());
  // Vector explores first.
  EXPECT_EQ(race.candidate(), kn::KernelChoice::kVector);
  EXPECT_FALSE(race.note_epoch(10.0));
  EXPECT_FALSE(race.note_epoch(12.0));
  EXPECT_EQ(race.candidate(), kn::KernelChoice::kScalar);
  EXPECT_FALSE(race.note_epoch(5.0));
  EXPECT_TRUE(race.note_epoch(6.0));  // lock-in, exactly once
  EXPECT_FALSE(race.active());
  EXPECT_EQ(race.winner(), kn::KernelChoice::kScalar);  // argmin best_us
  const kn::KernelRaceState& st = race.state();
  EXPECT_TRUE(st.calibrated);
  EXPECT_EQ(st.exploration_epochs, 4);
  ASSERT_EQ(st.timings.size(), 2u);
  EXPECT_EQ(st.timings[0].best_us, 10.0);
  EXPECT_EQ(st.timings[1].best_us, 5.0);
  // Disarmed races ignore feeds.
  EXPECT_FALSE(race.note_epoch(1.0));
}

TEST(KernelRace, PlanTelemetryRecordsDispatchAndRace) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(14, 12));
  const index_t n = f.l.rows;
  const index_t k = 8;
  const auto b = random_vec(static_cast<std::size_t>(n * k), 3);
  std::vector<double> x(b.size());

  // Pinned strategy + kAuto kernel: nothing to calibrate strategy-wise,
  // so lane-kernel dispatches feed the kernel race immediately.
  sp::TrisolvePlan plan(pool(), f.l, f.u,
                        plan_opts(sp::ExecutionStrategy::kDoacross, 4,
                                  sp::PlanLayout::kPacked,
                                  kn::KernelChoice::kAuto));
  EXPECT_EQ(plan.telemetry().isa, kn::dispatched_isa());
  if (kn::dispatched_isa() == kn::KernelIsa::kScalar) {
    // Scalar machine (or PDX_KERNEL=scalar): no race to run, the choice
    // is scalar from construction.
    EXPECT_EQ(plan.telemetry().kernel, kn::KernelChoice::kScalar);
    for (int e = 0; e < 6; ++e) {
      plan.solve_batch(b, x, k, sp::BatchMode::kWavefrontInterleaved);
    }
    EXPECT_FALSE(plan.telemetry().kernel_race.calibrated);
    return;
  }
  // Vector machine: the race explores scalar and vector on interleaved
  // batches and locks in a measured winner (2 epochs per choice by
  // default).
  for (int e = 0; e < 6; ++e) {
    plan.solve_batch(b, x, k, sp::BatchMode::kWavefrontInterleaved);
  }
  const sp::PlanTelemetry& t = plan.telemetry();
  EXPECT_TRUE(t.kernel_race.calibrated);
  ASSERT_EQ(t.kernel_race.timings.size(), 2u);
  EXPECT_GT(t.kernel_race.timings[0].epochs, 0);
  EXPECT_GT(t.kernel_race.timings[1].epochs, 0);
  EXPECT_EQ(t.kernel_race.exploration_epochs, 4);
  EXPECT_TRUE(t.kernel == kn::KernelChoice::kScalar ||
              t.kernel == kn::KernelChoice::kVector);

  // Forced choices never race.
  sp::TrisolvePlan pinned(pool(), f.l, f.u,
                          plan_opts(sp::ExecutionStrategy::kDoacross, 4,
                                    sp::PlanLayout::kPacked,
                                    kn::KernelChoice::kVector));
  for (int e = 0; e < 6; ++e) {
    pinned.solve_batch(b, x, k, sp::BatchMode::kWavefrontInterleaved);
  }
  EXPECT_FALSE(pinned.telemetry().kernel_race.calibrated);
  EXPECT_EQ(pinned.telemetry().kernel, kn::KernelChoice::kVector);
}

TEST(KernelRace, SingleRhsAndNarrowBatchesNeverFeedTheRace) {
  // Only wavefront-interleaved batches with k >= kLaneMin execute lane
  // kernels; single-RHS solves and narrow batches must leave the race
  // untouched (their timings would be meaningless for it).
  const sp::IluFactors f = sp::ilu0(gen::five_point(12, 12));
  const index_t n = f.l.rows;
  const auto b1 = random_vec(static_cast<std::size_t>(n), 4);
  const auto b2 = random_vec(static_cast<std::size_t>(n * 2), 6);
  std::vector<double> x1(b1.size()), x2(b2.size());
  sp::TrisolvePlan plan(pool(), f.l, f.u,
                        plan_opts(sp::ExecutionStrategy::kDoacross, 4,
                                  sp::PlanLayout::kPacked,
                                  kn::KernelChoice::kAuto));
  for (int e = 0; e < 8; ++e) {
    plan.solve(b1, x1);
    plan.solve_batch(b2, x2, 2, sp::BatchMode::kWavefrontInterleaved);
    plan.solve_batch(b2, x2, 2, sp::BatchMode::kColumnSequential);
  }
  EXPECT_FALSE(plan.telemetry().kernel_race.calibrated);
  EXPECT_EQ(plan.telemetry().kernel_race.exploration_epochs, 0);
}

TEST(KernelRace, BatchDriverForwardsKnobsAndReportsDispatch) {
  const sp::Csr a = gen::five_point(13, 13);
  const auto b = random_vec(static_cast<std::size_t>(a.rows), 12);

  solve::BatchDriverOptions opts;
  opts.kernel = kn::KernelChoice::kScalar;
  solve::BatchDriver driver(pool(), a, opts);
  std::vector<double> x(b.size(), 0.0);
  driver.enqueue(b, x);
  const solve::BatchReport rep = driver.drain();
  EXPECT_EQ(rep.isa, kn::dispatched_isa());
  EXPECT_EQ(rep.kernel, kn::KernelChoice::kScalar);
  EXPECT_FALSE(rep.kernel_calibrated);

  // And the scalar-pinned drain answers bitwise like the default drain.
  solve::BatchDriver driver2(pool(), a, solve::BatchDriverOptions{});
  std::vector<double> x2(b.size(), 0.0);
  driver2.enqueue(b, x2);
  const solve::BatchReport rep2 = driver2.drain();
  EXPECT_EQ(rep.converged, rep2.converged);
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], x2[i]) << i;
}
