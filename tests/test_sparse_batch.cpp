// Tests for the batched multi-RHS execution layer: solve_batch is bitwise
// identical to k sequential solve() calls across thread counts, schedules,
// batch modes and k; a whole batch costs exactly ONE pool dispatch
// (asserted with rt::DispatchProbe); spmv_batch matches per-column spmv;
// and the row-major multi-RHS upper doacross completes the par_trisolve
// API pair.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/precond.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
namespace core = pdx::core;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

/// Column-major n-by-k matrix of deterministic pseudo-random values.
std::vector<double> random_columns(index_t n, index_t k, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> m(static_cast<std::size_t>(n * k));
  for (auto& v : m) v = rng.next_double(-1.0, 1.0);
  return m;
}

constexpr sp::BatchMode kModes[] = {sp::BatchMode::kColumnSequential,
                                    sp::BatchMode::kWavefrontInterleaved};

const char* mode_name(sp::BatchMode m) {
  return m == sp::BatchMode::kColumnSequential ? "column-sequential"
                                               : "wavefront-interleaved";
}

}  // namespace

TEST(SolveBatch, BitwiseIdentityAcrossModesThreadsSchedulesAndK) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(16, 16));
  const index_t n = f.l.rows;

  for (unsigned nth : {1u, 2u, 4u}) {
    for (const auto& sched :
         {rt::Schedule::static_block(), rt::Schedule::dynamic(8)}) {
      sp::PlanOptions opts;
      opts.nthreads = nth;
      opts.schedule = sched;
      sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
      for (index_t k : {1, 3, 8, 33}) {
        const auto b = random_columns(n, k, 1000 + static_cast<unsigned>(k));
        // Reference: k sequential fused solves through the SAME plan.
        std::vector<double> x_seq(static_cast<std::size_t>(n * k));
        rt::DispatchProbe probe(pool());
        for (index_t c = 0; c < k; ++c) {
          plan.solve(std::span<const double>(b.data() + c * n,
                                             static_cast<std::size_t>(n)),
                     std::span<double>(x_seq.data() + c * n,
                                       static_cast<std::size_t>(n)));
        }
        EXPECT_EQ(probe.delta(), static_cast<std::uint64_t>(k))
            << "sequential path: one dispatch per RHS";

        for (sp::BatchMode mode : kModes) {
          std::vector<double> x(static_cast<std::size_t>(n * k), 0.0);
          probe.rebase();
          plan.solve_batch(b, x, k, mode);
          EXPECT_EQ(probe.delta(), 1u)
              << mode_name(mode) << " batch of " << k
              << " must cost exactly one pool dispatch";
          for (index_t i = 0; i < n * k; ++i) {
            ASSERT_EQ(x_seq[static_cast<std::size_t>(i)],
                      x[static_cast<std::size_t>(i)])
                << "nth=" << nth << " " << rt::to_string(sched) << " k=" << k
                << " " << mode_name(mode) << " col " << i / n << " row "
                << i % n;
          }
        }
      }
    }
  }
}

TEST(SolveBatch, PointerColumnsNeedNotBeContiguous) {
  const sp::IluFactors f = sp::ilu0(gen::seven_point(6, 6, 6));
  const index_t n = f.l.rows;
  const index_t k = 5;
  sp::TrisolvePlan plan(pool(), f.l, f.u, {});

  // Each column is its own caller-owned vector — the BatchDriver shape.
  std::vector<std::vector<double>> b(static_cast<std::size_t>(k)),
      x(static_cast<std::size_t>(k));
  std::vector<const double*> b_ptrs(static_cast<std::size_t>(k));
  std::vector<double*> x_ptrs(static_cast<std::size_t>(k));
  for (index_t c = 0; c < k; ++c) {
    gen::SplitMix64 rng(40 + static_cast<std::uint64_t>(c));
    b[static_cast<std::size_t>(c)].resize(static_cast<std::size_t>(n));
    for (auto& v : b[static_cast<std::size_t>(c)]) {
      v = rng.next_double(-1.0, 1.0);
    }
    x[static_cast<std::size_t>(c)].assign(static_cast<std::size_t>(n), 0.0);
    b_ptrs[static_cast<std::size_t>(c)] = b[static_cast<std::size_t>(c)].data();
    x_ptrs[static_cast<std::size_t>(c)] = x[static_cast<std::size_t>(c)].data();
  }

  for (sp::BatchMode mode : kModes) {
    for (auto& col : x) std::fill(col.begin(), col.end(), 0.0);
    rt::DispatchProbe probe(pool());
    plan.solve_batch(b_ptrs.data(), x_ptrs.data(), k, mode);
    EXPECT_EQ(probe.delta(), 1u);
    for (index_t c = 0; c < k; ++c) {
      std::vector<double> t(static_cast<std::size_t>(n)),
          z(static_cast<std::size_t>(n));
      sp::trisolve_lower_seq(f.l, b[static_cast<std::size_t>(c)], t);
      sp::trisolve_upper_seq(f.u, t, z);
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(z[static_cast<std::size_t>(i)],
                  x[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)])
            << mode_name(mode) << " col " << c << " row " << i;
      }
    }
  }
}

TEST(SolveBatch, PlanReusableAcrossVaryingBatchSizes) {
  const sp::IluFactors f = sp::ilu0(gen::nine_point(12, 12));
  const index_t n = f.l.rows;
  sp::TrisolvePlan plan(pool(), f.l, f.u, {});
  const std::uint64_t solves0 = plan.solves();

  std::uint64_t columns = 0;
  for (index_t k : {8, 3, 33, 1}) {  // grow, shrink, grow again
    const auto b = random_columns(n, k, 500 + static_cast<unsigned>(k));
    std::vector<double> x(static_cast<std::size_t>(n * k));
    plan.solve_batch(b, x, k);
    columns += static_cast<std::uint64_t>(k);
    for (index_t c = 0; c < k; ++c) {
      std::vector<double> t(static_cast<std::size_t>(n)),
          z(static_cast<std::size_t>(n));
      sp::trisolve_lower_seq(
          f.l,
          std::span<const double>(b.data() + c * n,
                                  static_cast<std::size_t>(n)),
          t);
      sp::trisolve_upper_seq(f.u, t, z);
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(z[static_cast<std::size_t>(i)],
                  x[static_cast<std::size_t>(c * n + i)])
            << "k=" << k << " col " << c << " row " << i;
      }
    }
  }
  EXPECT_EQ(plan.solves() - solves0, 4u) << "one dispatch per batch";
  EXPECT_EQ(plan.batch_columns(), columns);
}

TEST(SolveBatch, ReserveBatchMakesSolvesAllocationFreeAndIdentical) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(10, 10));
  const index_t n = f.l.rows;
  const index_t k = 6;
  sp::TrisolvePlan plan(pool(), f.l, f.u, {});
  plan.reserve_batch(k);

  const auto b = random_columns(n, k, 77);
  std::vector<double> x1(static_cast<std::size_t>(n * k)),
      x2(static_cast<std::size_t>(n * k));
  plan.solve_batch(b, x1, k);
  plan.solve_batch(b, x2, k);  // epoch reuse: second batch through the
                               // same tables must agree exactly
  for (index_t i = 0; i < n * k; ++i) {
    ASSERT_EQ(x1[static_cast<std::size_t>(i)],
              x2[static_cast<std::size_t>(i)]);
  }
}

TEST(SolveBatch, GuardsRejectMisuse) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(6, 6));
  const index_t n = f.l.rows;
  sp::TrisolvePlan lower_only(pool(), f.l, sp::PlanOptions{});
  std::vector<double> b(static_cast<std::size_t>(n)), x = b;
  EXPECT_THROW(lower_only.solve_batch(b, x, 1), std::logic_error);

  sp::TrisolvePlan plan(pool(), f.l, f.u, {});
  EXPECT_THROW(plan.solve_batch(b, x, 0), std::invalid_argument);
  EXPECT_THROW(plan.solve_batch(b, x, -3), std::invalid_argument);
  EXPECT_THROW(plan.solve_batch(b, x, 2), std::invalid_argument)
      << "n-sized spans cannot hold 2 columns";
  EXPECT_THROW(plan.reserve_batch(0), std::invalid_argument);
}

TEST(SolveBatch, PreconditionerApplyBatchMatchesSequentialApplications) {
  const sp::Csr a = gen::five_point(14, 14);
  // Calibration off: the one-dispatch assertion below assumes the plan
  // holds a fixed parallel strategy across every batched application.
  const solve::DoacrossIlu0Preconditioner m(
      pool(), a, sp::PlanOptions{.calibration_epochs = 0},
      sp::FactorPlanOptions{});
  const index_t n = a.rows;
  const index_t k = 7;
  m.reserve_batch(k);

  const auto r = random_columns(n, k, 91);
  std::vector<double> z_seq(static_cast<std::size_t>(n * k));
  for (index_t c = 0; c < k; ++c) {
    m.apply(std::span<const double>(r.data() + c * n,
                                    static_cast<std::size_t>(n)),
            std::span<double>(z_seq.data() + c * n,
                              static_cast<std::size_t>(n)));
  }
  for (sp::BatchMode mode : kModes) {
    std::vector<double> z(static_cast<std::size_t>(n * k), 0.0);
    rt::DispatchProbe probe(pool());
    m.apply_batch(r, z, k, mode);
    EXPECT_EQ(probe.delta(), 1u) << mode_name(mode);
    for (index_t i = 0; i < n * k; ++i) {
      ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
                z[static_cast<std::size_t>(i)])
          << mode_name(mode) << " " << i;
    }
  }
}

TEST(SpmvBatch, MatchesPerColumnSpmvSequentialAndParallel) {
  const sp::Csr a = gen::nine_point(11, 13);
  const index_t n = a.rows;
  for (index_t k : {1, 3, 8, 17}) {  // crosses the register-block width
    const auto x = random_columns(n, k, 200 + static_cast<unsigned>(k));
    std::vector<double> y_ref(static_cast<std::size_t>(n * k));
    for (index_t c = 0; c < k; ++c) {
      sp::spmv(a,
               std::span<const double>(x.data() + c * n,
                                       static_cast<std::size_t>(n)),
               std::span<double>(y_ref.data() + c * n,
                                 static_cast<std::size_t>(n)));
    }
    std::vector<double> y(static_cast<std::size_t>(n * k), 0.0);
    sp::spmv_batch(a, x, y, k);
    for (index_t i = 0; i < n * k; ++i) {
      ASSERT_EQ(y_ref[static_cast<std::size_t>(i)],
                y[static_cast<std::size_t>(i)])
          << "sequential k=" << k << " " << i;
    }
    std::fill(y.begin(), y.end(), 0.0);
    rt::DispatchProbe probe(pool());
    sp::spmv_batch_parallel(pool(), a, x, y, k, 4);
    EXPECT_LE(probe.delta(), 1u) << "all k columns in at most one dispatch";
    for (index_t i = 0; i < n * k; ++i) {
      ASSERT_EQ(y_ref[static_cast<std::size_t>(i)],
                y[static_cast<std::size_t>(i)])
          << "parallel k=" << k << " " << i;
    }
  }
}

TEST(UpperDoacrossMulti, RowMajorMultiMatchesPerColumnSequential) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(13, 13));
  const index_t n = f.u.rows;
  const core::Reordering u_ord = sp::upper_solve_reordering(f.u);
  for (unsigned nth : {1u, 2u, 4u}) {
    for (index_t nrhs : {1, 4, 9}) {
      // Row-major multi layout: element (i, r) at i*nrhs + r.
      gen::SplitMix64 rng(300 + nth + static_cast<unsigned>(nrhs));
      std::vector<double> rhs(static_cast<std::size_t>(n * nrhs));
      for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);

      std::vector<double> y(static_cast<std::size_t>(n * nrhs), 0.0);
      core::EpochReadyTable ready(n);
      sp::TrisolveOptions opts;
      opts.nthreads = nth;
      opts.order = u_ord.order.data();
      sp::trisolve_upper_doacross_multi(pool(), f.u, rhs, y, nrhs, ready,
                                        opts);

      for (index_t r = 0; r < nrhs; ++r) {
        std::vector<double> b1(static_cast<std::size_t>(n)),
            y1(static_cast<std::size_t>(n));
        for (index_t i = 0; i < n; ++i) {
          b1[static_cast<std::size_t>(i)] =
              rhs[static_cast<std::size_t>(i * nrhs + r)];
        }
        sp::trisolve_upper_seq(f.u, b1, y1);
        for (index_t i = 0; i < n; ++i) {
          ASSERT_EQ(y1[static_cast<std::size_t>(i)],
                    y[static_cast<std::size_t>(i * nrhs + r)])
              << "nth=" << nth << " nrhs=" << nrhs << " col " << r << " row "
              << i;
        }
      }
    }
  }
}
