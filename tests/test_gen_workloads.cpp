// Tests for the workload generators: the Fig. 4 test loop's dependence
// structure (the odd/even-L dichotomy Figure 6 rests on) and the random
// irregular loop generator.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/iter_table.hpp"
#include "gen/random_loop.hpp"
#include "gen/rng.hpp"
#include "gen/testloop.hpp"

namespace gen = pdx::gen;
namespace core = pdx::core;
using pdx::index_t;

TEST(SplitMix64, DeterministicAndSpread) {
  gen::SplitMix64 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // different seed, different stream (w.h.p.)
  }
}

TEST(SplitMix64, DoublesInUnitInterval) {
  gen::SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, BoundedIntegersInRange) {
  gen::SplitMix64 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RandomInjection, ProducesInjectiveInRangeMap) {
  gen::SplitMix64 rng(11);
  const auto m = gen::random_injection(100, 250, rng);
  EXPECT_EQ(m.size(), 100u);
  std::set<index_t> uniq(m.begin(), m.end());
  EXPECT_EQ(uniq.size(), 100u);
  for (index_t v : m) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 250);
  }
}

TEST(RandomInjection, FullPermutationWhenTight) {
  gen::SplitMix64 rng(12);
  const auto m = gen::random_injection(50, 50, rng);
  std::set<index_t> uniq(m.begin(), m.end());
  EXPECT_EQ(uniq.size(), 50u);
}

TEST(TestLoop, MatchesPaperInitialization) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 100, .m = 5, .l = 3});
  // a(i) = 2i (+ base), nbrs(j) = 2j - L in the paper's 1-based indexing.
  for (index_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tl.a[static_cast<std::size_t>(i)], 2 * i + tl.base);
    EXPECT_EQ(tl.b[static_cast<std::size_t>(i)], 2 * i + tl.base);
  }
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(tl.nbrs[static_cast<std::size_t>(j)], 2 * (j + 1) - 3);
  }
  // Writer map must be injective and in range (no output dependences).
  EXPECT_EQ(core::find_writer_conflict(tl.a, tl.value_space), -1);
}

TEST(TestLoop, AllOffsetsInBounds) {
  for (int l = 1; l <= 14; ++l) {
    const gen::TestLoop tl = gen::make_test_loop({.n = 50, .m = 5, .l = l});
    for (index_t i = 0; i < tl.n(); ++i) {
      for (int j = 0; j < tl.params.m; ++j) {
        const index_t off = tl.b[static_cast<std::size_t>(i)] +
                            tl.nbrs[static_cast<std::size_t>(j)];
        EXPECT_GE(off, 0) << "L=" << l << " i=" << i << " j=" << j;
        EXPECT_LT(off, tl.value_space);
      }
    }
  }
}

TEST(TestLoop, OddLHasNoCrossIterationDependences) {
  for (int l : {1, 3, 5, 7, 9, 11, 13}) {
    const gen::TestLoop tl = gen::make_test_loop({.n = 400, .m = 5, .l = l});
    EXPECT_EQ(gen::count_true_deps(tl), 0) << "L=" << l;
  }
}

TEST(TestLoop, EvenLDependenceDistanceIsHalfLMinusJ) {
  // For even L, iteration i truly depends on i - (L/2 - j) for each
  // j = 1..min(M, L/2 - 1).
  for (int l : {4, 8, 12}) {
    const int m = 5;
    const gen::TestLoop tl = gen::make_test_loop({.n = 300, .m = m, .l = l});
    const core::DepGraph g = gen::test_loop_deps(tl);
    const index_t half = l / 2;
    std::set<index_t> want_dists;
    for (int j = 1; j <= m && j < half; ++j) want_dists.insert(half - j);

    // Check a mid-range iteration (boundary iterations clip).
    const index_t i = 100;
    std::set<index_t> got;
    for (index_t d : g.deps_of(i)) got.insert(i - d);
    EXPECT_EQ(got, want_dists) << "L=" << l;
  }
}

TEST(TestLoop, L2IsPureSelfReference) {
  // L=2, M=1: offset = b(i) + 2 - 2 = a(i): intra-iteration only.
  const gen::TestLoop tl = gen::make_test_loop({.n = 200, .m = 1, .l = 2});
  EXPECT_EQ(gen::count_true_deps(tl), 0);
}

TEST(TestLoop, SequentialExecutionIsDeterministic) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 500, .m = 4, .l = 6});
  std::vector<double> y1 = gen::make_initial_y(tl);
  std::vector<double> y2 = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y1);
  gen::run_test_loop_seq(tl, y2);
  EXPECT_EQ(y1, y2);
}

TEST(TestLoop, WorkRepsChangeValuesNotDependences) {
  const gen::TestLoop plain = gen::make_test_loop({.n = 100, .m = 2, .l = 4});
  const gen::TestLoop heavy =
      gen::make_test_loop({.n = 100, .m = 2, .l = 4, .work_reps = 8});
  EXPECT_EQ(gen::test_loop_deps(plain).edges(),
            gen::test_loop_deps(heavy).edges());
}

TEST(TestLoop, RejectsBadParameters) {
  EXPECT_THROW(gen::make_test_loop({.n = 0, .m = 1, .l = 1}),
               std::invalid_argument);
  EXPECT_THROW(gen::make_test_loop({.n = 10, .m = 0, .l = 1}),
               std::invalid_argument);
  EXPECT_THROW(gen::make_test_loop({.n = 10, .m = 1, .l = 0}),
               std::invalid_argument);
}

TEST(RandomLoop, RespectsShapeParameters) {
  gen::RandomLoopParams p{.n = 300, .value_space = 600, .min_reads = 2,
                          .max_reads = 5, .dep_bias = 0.5};
  const gen::RandomLoop rl = gen::make_random_loop(p, 1);
  EXPECT_EQ(rl.n(), 300);
  EXPECT_EQ(rl.value_space, 600);
  EXPECT_EQ(core::find_writer_conflict(rl.writer, rl.value_space), -1);
  for (index_t i = 0; i < rl.n(); ++i) {
    const index_t reads = rl.read_ptr[static_cast<std::size_t>(i) + 1] -
                          rl.read_ptr[static_cast<std::size_t>(i)];
    EXPECT_GE(reads, 2);
    EXPECT_LE(reads, 5);
  }
  for (index_t off : rl.read_off) {
    EXPECT_GE(off, 0);
    EXPECT_LT(off, rl.value_space);
  }
}

TEST(RandomLoop, FullDepBiasYieldsManyDependences) {
  gen::RandomLoopParams p{.n = 500, .value_space = 500, .min_reads = 2,
                          .max_reads = 2, .dep_bias = 1.0};
  const gen::RandomLoop rl = gen::make_random_loop(p, 2);
  const core::DepGraph g = gen::random_loop_deps(rl);
  // All reads of iterations i >= 1 target earlier writers.
  EXPECT_GT(g.edges(), rl.n());
}

TEST(RandomLoop, DefaultValueSpaceIsTwiceN) {
  const gen::RandomLoop rl =
      gen::make_random_loop({.n = 100, .value_space = 0}, 3);
  EXPECT_EQ(rl.value_space, 200);
}

TEST(RandomLoop, RejectsImpossibleShapes) {
  EXPECT_THROW(
      gen::make_random_loop({.n = 100, .value_space = 50}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      gen::make_random_loop({.n = 10, .min_reads = 5, .max_reads = 2}, 1),
      std::invalid_argument);
}
