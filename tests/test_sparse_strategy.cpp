// Tests for strategy-polymorphic TrisolvePlans (DESIGN.md §9): every
// strategy (doacross, level-barrier, serial, blocked-hybrid, Auto) is
// bitwise identical to the sequential Fig. 7 solves across thread counts
// and batch shapes, parallel strategies keep the one-dispatch-per-solve
// budget (serial costs zero), and Auto's build-time measurement lands on
// the right strategy for generated workloads: level-barrier for
// wide/shallow stencil factors, doacross for scattered long-distance
// dependences, blocked-hybrid for short-distance gapped bands, and serial
// for chain-like matrices (e.g. an RCM-recovered tridiagonal band).
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/advisor.hpp"
#include "gen/random_loop.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"
#include "solve/cg.hpp"
#include "solve/precond.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/permute.hpp"
#include "sparse/rcm.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace core = pdx::core;
namespace rt = pdx::rt;
using pdx::index_t;
using sp::ExecutionStrategy;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

std::vector<double> random_rhs(index_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
  return rhs;
}

/// Symmetric band operator coupling i to i±gap only: the lower ILU(0)
/// factor is `gap` interleaved chains — moderate width, distance == gap.
sp::Csr gapped_band(index_t n, index_t gap) {
  sp::CsrBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i >= gap) b.add(i, i - gap, -1.0);
    b.add(i, i, 8.0);
    if (i + gap < n) b.add(i, i + gap, -1.0);
  }
  return b.build();
}

/// Symmetric tridiagonal-ish band (couplings at ±1 and ±2): chain-like —
/// the lower factor's wavefronts have width 1.
sp::Csr tight_band(index_t n) {
  sp::CsrBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i >= 2) b.add(i, i - 2, -1.0);
    if (i >= 1) b.add(i, i - 1, -1.0);
    b.add(i, i, 8.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
    if (i + 2 < n) b.add(i, i + 2, -1.0);
  }
  return b.build();
}

/// Deterministic random symmetric permutation.
std::vector<index_t> shuffled_perm(index_t n, std::uint64_t seed) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  gen::SplitMix64 rng(seed);
  for (index_t i = n - 1; i > 0; --i) {
    const index_t j = static_cast<index_t>(
        rng.next() % static_cast<std::uint64_t>(i + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

/// Synthetic L/U pair whose dependence DAG is `width` interleaved chains
/// (deep, narrow wavefronts) with an extra scattered LONG-distance edge
/// per row — the shape where flags pipeline and barriers would serialize.
struct ScatteredChains {
  sp::Csr l, u;
};

ScatteredChains scattered_chains(index_t n, index_t width) {
  sp::CsrBuilder bl(n, n), bu(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i >= width) bl.add(i, i - width, -0.25);
    if (i >= 64) {
      // Deterministic long edge: distance in [64, 64 + n/2).
      const index_t d = 64 + (i * 97) % (n / 2);
      if (i >= d) bl.add(i, i - d, -0.125);
    }
    bl.add(i, i, 1.0);  // unit diagonal, stored last like an ILU(0) L
    bu.add(i, i, 2.0);  // diagonal first
    if (i + width < n) bu.add(i, i + width, -0.25);
    if (i + 64 < n) {
      const index_t d = 64 + (i * 61) % (n / 2);
      if (i + d < n) bu.add(i, i + d, -0.125);
    }
  }
  return {bl.build(), bu.build()};
}

void expect_bitwise_fused(sp::TrisolvePlan& plan, const sp::Csr& l,
                          const sp::Csr& u, std::uint64_t seed,
                          const char* what) {
  const index_t n = l.rows;
  const auto rhs = random_rhs(n, seed);
  std::vector<double> t(static_cast<std::size_t>(n)),
      z_seq(static_cast<std::size_t>(n)), z(static_cast<std::size_t>(n));
  sp::trisolve_lower_seq(l, rhs, t);
  sp::trisolve_upper_seq(u, t, z_seq);
  plan.solve(rhs, z);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
              z[static_cast<std::size_t>(i)])
        << what << " row " << i;
  }
}

}  // namespace

TEST(StrategySelection, AutoPicksLevelBarrierForWideStencilFactor) {
  // 24x24 five-point ILU(0): ~47 wavefronts of average width ~12 — wide
  // and shallow at 4 processors, so barriers beat flags.
  const sp::IluFactors f = sp::ilu0(gen::five_point(24, 24));
  sp::PlanOptions opts;
  opts.nthreads = 4;
  opts.strategy = ExecutionStrategy::kAuto;
  opts.calibration_epochs = 0;  // assert the heuristic opening bid itself
  sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
  EXPECT_EQ(plan.strategy(), ExecutionStrategy::kLevelBarrier);
  EXPECT_EQ(plan.telemetry().requested, ExecutionStrategy::kAuto);
  EXPECT_FALSE(plan.telemetry().rationale.empty());
  EXPECT_GT(plan.telemetry().structure.levels, 0);
  EXPECT_EQ(plan.telemetry().procs, 4u);

  rt::DispatchProbe probe(pool());
  expect_bitwise_fused(plan, f.l, f.u, 11, "stencil/level-barrier");
  EXPECT_EQ(probe.delta(), 1u) << "level-barrier fused solve: one dispatch";
}

TEST(StrategySelection, AutoPicksDoacrossForScatteredLongDistanceDeps) {
  // Deep narrow DAG (4 interleaved chains) with scattered long edges:
  // too narrow for cheap barriers, too long-range for static blocks.
  const ScatteredChains m = scattered_chains(2048, 4);
  sp::PlanOptions opts;
  opts.nthreads = 4;
  opts.strategy = ExecutionStrategy::kAuto;
  opts.calibration_epochs = 0;  // assert the heuristic opening bid itself
  sp::TrisolvePlan plan(pool(), m.l, m.u, opts);
  EXPECT_EQ(plan.strategy(), ExecutionStrategy::kDoacross);
  EXPECT_FALSE(plan.telemetry().rationale.empty());
  EXPECT_GT(plan.telemetry().structure.max_distance, 64);

  rt::DispatchProbe probe(pool());
  expect_bitwise_fused(plan, m.l, m.u, 12, "scattered/doacross");
  EXPECT_EQ(probe.delta(), 1u);
}

TEST(StrategySelection, AutoPicksBlockedHybridForGappedBand) {
  // Couplings at ±4 only: width-4 wavefronts, max distance 4 — almost
  // every dependence stays inside a static block.
  const sp::IluFactors f = sp::ilu0(gapped_band(600, 4));
  sp::PlanOptions opts;
  opts.nthreads = 4;
  opts.strategy = ExecutionStrategy::kAuto;
  opts.calibration_epochs = 0;  // assert the heuristic opening bid itself
  sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
  EXPECT_EQ(plan.strategy(), ExecutionStrategy::kBlockedHybrid);
  EXPECT_FALSE(plan.telemetry().rationale.empty());
  EXPECT_EQ(plan.telemetry().structure.max_distance, 4);

  rt::DispatchProbe probe(pool());
  expect_bitwise_fused(plan, f.l, f.u, 13, "gapped-band/blocked");
  EXPECT_EQ(probe.delta(), 1u);
}

TEST(StrategySelection, RcmRecoveredBandIsChainLikeAndGoesSerial) {
  // A shuffled tight band hides its chain: scattered numbering gives a
  // shallow-looking DAG. RCM recovers the band; the recovered factor's
  // wavefronts have width ~1 and Auto correctly refuses to parallelize.
  const index_t n = 400;
  const sp::Csr band = tight_band(n);
  const sp::Csr shuffled =
      sp::permute_symmetric(band, shuffled_perm(n, 99));
  const sp::Csr recovered =
      sp::permute_symmetric(shuffled, sp::rcm_order(shuffled));
  EXPECT_LE(sp::bandwidth(recovered), 4);

  const sp::IluFactors f_shuf = sp::ilu0(shuffled);
  const sp::IluFactors f_rcm = sp::ilu0(recovered);
  const auto s_shuf = sp::measure_lower_solve(f_shuf.l);
  const auto s_rcm = sp::measure_lower_solve(f_rcm.l);
  EXPECT_LT(s_rcm.max_distance, s_shuf.max_distance)
      << "RCM must shorten dependence distances";
  EXPECT_LT(s_rcm.avg_level_width, 1.5) << "recovered band is a chain";

  sp::PlanOptions opts;
  opts.nthreads = 4;
  opts.strategy = ExecutionStrategy::kAuto;
  opts.calibration_epochs = 0;  // assert the heuristic opening bid itself
  sp::TrisolvePlan plan(pool(), f_rcm.l, f_rcm.u, opts);
  EXPECT_EQ(plan.strategy(), ExecutionStrategy::kSerial);
  EXPECT_FALSE(plan.telemetry().rationale.empty());

  // Serial strategy: bitwise identical AND zero pool dispatches.
  rt::DispatchProbe probe(pool());
  expect_bitwise_fused(plan, f_rcm.l, f_rcm.u, 14, "rcm-band/serial");
  EXPECT_EQ(probe.delta(), 0u) << "serial plan must never wake the pool";

  // The shuffled twin still has exploitable structure.
  sp::TrisolvePlan plan_shuf(pool(), f_shuf.l, f_shuf.u, opts);
  EXPECT_NE(plan_shuf.strategy(), ExecutionStrategy::kSerial);
  expect_bitwise_fused(plan_shuf, f_shuf.l, f_shuf.u, 15, "shuffled band");
}

TEST(StrategySelection, SingleThreadAutoGoesSerial) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(12, 12));
  sp::PlanOptions opts;
  opts.nthreads = 1;
  opts.strategy = ExecutionStrategy::kAuto;
  sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
  EXPECT_EQ(plan.strategy(), ExecutionStrategy::kSerial);
  rt::DispatchProbe probe(pool());
  expect_bitwise_fused(plan, f.l, f.u, 16, "1-thread/serial");
  EXPECT_EQ(probe.delta(), 0u);
}

TEST(StrategySelection, RandomLoopDepsGetConcreteAdviceWithRationale) {
  // The general-loop workload generator feeds the DepGraph overload; the
  // advisor must always land on a concrete strategy with a reason.
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    const gen::RandomLoop rl = gen::make_random_loop({.n = 800}, seed);
    const auto a = core::advise_schedule(gen::random_loop_deps(rl), 4);
    EXPECT_NE(a.strategy, core::ExecStrategy::kAuto);
    EXPECT_FALSE(a.rationale.empty()) << "seed " << seed;
  }
}

TEST(StrategyExecution, EveryStrategyBitwiseAcrossThreadsAndBatchShapes) {
  // The acceptance matrix: all five strategy knobs x thread counts 1/2/4
  // x {fused solve, solve_batch k in {1, 8} in both modes}, every result
  // bitwise identical to the sequential path, with the dispatch budget
  // asserted (1 for parallel strategies, 0 for serial).
  const sp::IluFactors f = sp::ilu0(gen::five_point(16, 16));
  const index_t n = f.l.rows;

  for (ExecutionStrategy req :
       {ExecutionStrategy::kDoacross, ExecutionStrategy::kLevelBarrier,
        ExecutionStrategy::kSerial, ExecutionStrategy::kBlockedHybrid,
        ExecutionStrategy::kAuto}) {
    for (unsigned nth : {1u, 2u, 4u}) {
      sp::PlanOptions opts;
      opts.nthreads = nth;
      opts.strategy = req;
      // Calibration off: the dispatch budget below asserts one strategy
      // per plan; the calibration race itself is covered by the
      // StrategyCalibration suite.
      opts.calibration_epochs = 0;
      sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
      ASSERT_NE(plan.strategy(), ExecutionStrategy::kAuto);
      ASSERT_FALSE(plan.telemetry().rationale.empty());
      const std::uint64_t per_solve =
          plan.strategy() == ExecutionStrategy::kSerial ? 0u : 1u;
      const char* sname = core::to_string(plan.strategy());

      // Fused single solve (also covers solve_lower/solve_upper paths).
      rt::DispatchProbe probe(pool());
      expect_bitwise_fused(plan, f.l, f.u,
                           400 + nth + static_cast<unsigned>(req), sname);
      EXPECT_EQ(probe.delta(), per_solve) << sname << " nth=" << nth;

      const auto rhs = random_rhs(n, 500 + nth);
      std::vector<double> y_seq(static_cast<std::size_t>(n)),
          y(static_cast<std::size_t>(n));
      sp::trisolve_lower_seq(f.l, rhs, y_seq);
      plan.solve_lower(rhs, y);
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                  y[static_cast<std::size_t>(i)])
            << sname << " lower row " << i;
      }
      sp::trisolve_upper_seq(f.u, rhs, y_seq);
      plan.solve_upper(rhs, y);
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                  y[static_cast<std::size_t>(i)])
            << sname << " upper row " << i;
      }

      // Batched solves, both modes, k in {1, 8}.
      for (index_t k : {1, 8}) {
        const auto b = random_rhs(n * k, 600 + static_cast<unsigned>(k));
        std::vector<double> x_ref(static_cast<std::size_t>(n * k));
        for (index_t c = 0; c < k; ++c) {
          std::vector<double> t(static_cast<std::size_t>(n));
          sp::trisolve_lower_seq(
              f.l,
              std::span<const double>(b.data() + c * n,
                                      static_cast<std::size_t>(n)),
              t);
          sp::trisolve_upper_seq(
              f.u, t,
              std::span<double>(x_ref.data() + c * n,
                                static_cast<std::size_t>(n)));
        }
        for (sp::BatchMode mode : {sp::BatchMode::kColumnSequential,
                                   sp::BatchMode::kWavefrontInterleaved}) {
          std::vector<double> x(static_cast<std::size_t>(n * k), 0.0);
          probe.rebase();
          plan.solve_batch(b, x, k, mode);
          EXPECT_EQ(probe.delta(), per_solve)
              << sname << " nth=" << nth << " k=" << k;
          for (index_t i = 0; i < n * k; ++i) {
            ASSERT_EQ(x_ref[static_cast<std::size_t>(i)],
                      x[static_cast<std::size_t>(i)])
                << sname << " nth=" << nth << " k=" << k << " mode "
                << static_cast<int>(mode) << " elem " << i;
          }
        }
      }
    }
  }
}

TEST(StrategyExecution, StandaloneLevelschedUpperMatchesSequential) {
  // The standalone counterpart of the plan's level-barrier upper kernel
  // (par_trisolve.hpp), for ablations against the planned path.
  const sp::IluFactors f = sp::ilu0(gen::nine_point(13, 13));
  const index_t n = f.u.rows;
  const core::Reordering u_ord = sp::upper_solve_reordering(f.u);
  const auto rhs = random_rhs(n, 314);
  std::vector<double> z_seq(static_cast<std::size_t>(n));
  sp::trisolve_upper_seq(f.u, rhs, z_seq);
  for (unsigned nth : {1u, 2u, 4u}) {
    std::vector<double> z(static_cast<std::size_t>(n), 0.0);
    sp::trisolve_levelsched_upper(pool(), f.u, rhs, z, u_ord, nth);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
                z[static_cast<std::size_t>(i)])
          << "nth=" << nth << " row " << i;
    }
  }
  std::vector<double> small(3);
  EXPECT_THROW(
      sp::trisolve_levelsched_upper(pool(), f.u, small, small, u_ord, 2),
      std::invalid_argument);
}

TEST(StrategyExecution, ExplicitStrategyWorksInsidePcg) {
  // Every strategy knob of the pool-taking entry point converges on the
  // same iteration path as the sequential ILU(0) preconditioner.
  const sp::Csr a = gen::five_point(20, 20);
  const auto b = random_rhs(a.rows, 77);
  std::vector<double> x_seq(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_seq = solve::pcg(a, b, x_seq, solve::Ilu0Preconditioner{a});
  ASSERT_TRUE(rep_seq.converged);

  for (ExecutionStrategy s :
       {ExecutionStrategy::kAuto, ExecutionStrategy::kDoacross,
        ExecutionStrategy::kLevelBarrier, ExecutionStrategy::kSerial,
        ExecutionStrategy::kBlockedHybrid}) {
    std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
    solve::CgOptions opts;
    opts.strategy = s;
    const auto rep = solve::pcg(pool(), a, b, x, opts);
    EXPECT_TRUE(rep.converged) << core::to_string(s);
    EXPECT_EQ(rep.iterations, rep_seq.iterations) << core::to_string(s);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x_seq[i], x[i]) << core::to_string(s) << " " << i;
    }
  }
}

TEST(StrategyExecution, BatchDriverReportsStrategyTelemetry) {
  core::tuning_cache().clear();
  const sp::Csr a = gen::five_point(14, 14);
  solve::BatchDriverOptions opts;  // strategy defaults to kAuto: calibrates
  solve::BatchDriver driver(pool(), a, opts);

  const auto b = random_rhs(a.rows, 88);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  driver.enqueue(b, x);
  const auto rep = driver.drain();
  EXPECT_EQ(rep.converged, 1u);
  EXPECT_NE(rep.strategy, ExecutionStrategy::kAuto);
  EXPECT_FALSE(rep.strategy_rationale.empty());
  // The report reflects the post-drain decision even though the race ran
  // across this very drain.
  EXPECT_EQ(rep.strategy, driver.preconditioner().plan().strategy());
  ASSERT_TRUE(rep.strategy_calibrated)
      << "a Krylov drain supplies more than enough solves to finish the race";
  EXPECT_FALSE(rep.tuning_cache_hit);
  EXPECT_GT(rep.exploration_epochs, 0);

  // A second driver over the same pattern hits the process-wide tuning
  // cache: zero exploration epochs, same locked-in strategy.
  solve::BatchDriver second(pool(), a, opts);
  std::vector<double> x2(static_cast<std::size_t>(a.rows), 0.0);
  second.enqueue(b, x2);
  const auto rep2 = second.drain();
  EXPECT_TRUE(rep2.strategy_calibrated);
  EXPECT_TRUE(rep2.tuning_cache_hit);
  EXPECT_EQ(rep2.exploration_epochs, 0);
  EXPECT_EQ(rep2.strategy, rep.strategy);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(x[i], x2[i]) << "cache-hit drain must stay bitwise, row " << i;
  }
  core::tuning_cache().clear();
}

TEST(StrategyCalibration, ExplorationEpochsBitwiseAndLockInMatchesBudget) {
  // Tentpole acceptance (a)+(b): every exploration epoch is bitwise
  // identical to the sequential reference (strategy switches are
  // invisible in the answers), and the plan locks in exactly when the
  // per-candidate budget is spent.
  core::tuning_cache().clear();
  const sp::IluFactors f = sp::ilu0(gen::five_point(16, 16));
  sp::PlanOptions opts;
  opts.nthreads = 2;
  opts.strategy = ExecutionStrategy::kAuto;
  opts.calibration_epochs = 2;
  sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
  ASSERT_TRUE(plan.calibrating());
  ASSERT_NE(plan.strategy(), ExecutionStrategy::kAuto)
      << "the heuristic opening bid runs while the race explores";

  const std::size_t budget =
      plan.telemetry().race.timings.size() *
      static_cast<std::size_t>(opts.calibration_epochs);
  std::size_t solves = 0;
  while (plan.calibrating()) {
    ASSERT_LT(solves, budget) << "race must lock in after its budget";
    expect_bitwise_fused(plan, f.l, f.u, 700 + solves, "exploration epoch");
    ++solves;
  }
  EXPECT_EQ(solves, budget);

  const core::StrategyRace& race = plan.telemetry().race;
  EXPECT_TRUE(race.calibrated);
  EXPECT_FALSE(race.cache_hit);
  EXPECT_EQ(race.exploration_epochs, static_cast<int>(budget));
  double best_us = 0.0;
  bool winner_raced = false;
  for (const core::StrategyTiming& t : race.timings) {
    EXPECT_EQ(t.epochs, opts.calibration_epochs);
    EXPECT_GT(t.best_us, 0.0);
    if (t.strategy == plan.strategy()) {
      winner_raced = true;
      best_us = t.best_us;
    }
  }
  EXPECT_TRUE(winner_raced) << "the winner must be one of the candidates";
  for (const core::StrategyTiming& t : race.timings) {
    EXPECT_GE(t.best_us, best_us) << "winner must be the measured argmin";
  }
  EXPECT_NE(plan.telemetry().rationale.find("calibrated"), std::string::npos);

  // Locked in: further solves stay bitwise on the winner.
  expect_bitwise_fused(plan, f.l, f.u, 900, "post lock-in");
  core::tuning_cache().clear();
}

TEST(StrategyCalibration, TuningCacheHitRunsZeroExplorationEpochs) {
  // Tentpole acceptance (c): a second plan over the same (pattern,
  // threads) adopts the cached winner without racing at all.
  core::tuning_cache().clear();
  const sp::IluFactors f = sp::ilu0(gen::five_point(16, 16));
  sp::PlanOptions opts;
  opts.nthreads = 2;
  opts.strategy = ExecutionStrategy::kAuto;
  sp::TrisolvePlan first(pool(), f.l, f.u, opts);
  ASSERT_TRUE(first.calibrating());
  const index_t n = f.l.rows;
  const auto rhs = random_rhs(n, 42);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::size_t guard = 0;
  while (first.calibrating()) {
    first.solve(rhs, x);
    ASSERT_LT(++guard, 64u);
  }

  sp::TrisolvePlan second(pool(), f.l, f.u, opts);
  EXPECT_FALSE(second.calibrating());
  EXPECT_TRUE(second.telemetry().race.calibrated);
  EXPECT_TRUE(second.telemetry().race.cache_hit);
  EXPECT_EQ(second.telemetry().race.exploration_epochs, 0);
  EXPECT_EQ(second.strategy(), first.strategy());
  EXPECT_NE(second.telemetry().rationale.find("tuning cache hit"),
            std::string::npos);
  expect_bitwise_fused(second, f.l, f.u, 901, "cache-hit plan");

  // The key fingerprints the thread count too: a different width races.
  sp::PlanOptions o4 = opts;
  o4.nthreads = 4;
  sp::TrisolvePlan third(pool(), f.l, f.u, o4);
  EXPECT_TRUE(third.calibrating());
  core::tuning_cache().clear();
}

TEST(StrategyCalibration, FaultDuringExplorationPoisonsWithoutFeedingCache) {
  // Tentpole acceptance (d): a fault mid-race follows the PR 6 abort
  // protocol — the plan poisons cleanly — and the aborted epoch neither
  // enters the race bookkeeping nor stores a winner in the cache.
  core::tuning_cache().clear();
  const sp::IluFactors f = sp::ilu0(gen::five_point(16, 16));
  sp::PlanOptions opts;
  opts.nthreads = 2;
  opts.strategy = ExecutionStrategy::kAuto;
  sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
  ASSERT_TRUE(plan.calibrating());
  rt::FaultInjector inj;
  plan.set_fault_injector(&inj);

  const index_t n = f.l.rows;
  const auto rhs = random_rhs(n, 43);
  std::vector<double> x(static_cast<std::size_t>(n));
  plan.solve(rhs, x);  // one healthy epoch: bookkeeping advances
  ASSERT_EQ(plan.telemetry().race.exploration_epochs, 1);

  inj.arm_throw(rt::FaultInjector::kAnyTid, n / 2);
  EXPECT_THROW(plan.solve(rhs, x), rt::InjectedFault);
  EXPECT_TRUE(plan.poisoned());
  EXPECT_THROW(plan.solve(rhs, x), rt::PlanPoisonedError);

  // The faulted epoch was never counted, the race never finished, and
  // nothing was stored for this fingerprint.
  EXPECT_EQ(plan.telemetry().race.exploration_epochs, 1);
  EXPECT_FALSE(plan.telemetry().race.calibrated);
  EXPECT_EQ(core::tuning_cache().stats().stores, 0u);
  EXPECT_EQ(core::tuning_cache().stats().entries, 0u);
  core::tuning_cache().clear();
}
