// Edge-case coverage across modules: degenerate sizes, guard paths, and
// failure handling that the main suites don't reach.
#include <gtest/gtest.h>

#include <vector>

#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "gen/block_operator.hpp"
#include "gen/stencil.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/cg.hpp"
#include "solve/gmres.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trisolve.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
namespace sp = pdx::sparse;
namespace solve = pdx::solve;
using pdx::index_t;

// ---------------------------------------------------------------------
// Sparse containers.
// ---------------------------------------------------------------------

TEST(EdgeCsr, OneByOneMatrix) {
  sp::CsrBuilder b(1, 1);
  b.add(0, 0, 3.0);
  const sp::Csr m = b.build();
  EXPECT_NO_THROW(m.validate());
  EXPECT_TRUE(m.is_lower_triangular());
  EXPECT_TRUE(m.is_upper_triangular());
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);

  const sp::IluFactors f = sp::ilu0(m);
  std::vector<double> rhs = {6.0}, y(1);
  sp::trisolve_lower_seq(f.l, rhs, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);  // unit diagonal
  sp::trisolve_upper_seq(f.u, rhs, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
}

TEST(EdgeCsr, EmptyBuilderYieldsEmptyMatrix) {
  sp::CsrBuilder b(3, 3);
  const sp::Csr m = b.build();
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_NO_THROW(m.validate());
  const sp::Csr t = m.transposed();
  EXPECT_EQ(t.nnz(), 0);
  EXPECT_EQ(t.rows, 3);
}

TEST(EdgeCsr, AtOnEmptyRow) {
  sp::CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  const sp::Csr m = b.build();
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_EQ(m.find(1, 1), -1);
}

TEST(EdgeSpmv, SizeGuards) {
  const sp::Csr m = gen::five_point(3, 3);
  std::vector<double> small(2), y(static_cast<std::size_t>(m.rows));
  EXPECT_THROW(sp::spmv(m, small, y), std::invalid_argument);
  EXPECT_THROW(sp::spmv(m, y, small), std::invalid_argument);
}

TEST(EdgeDense, GuardsAndRoundTrip) {
  sp::Dense d(2, 3);
  d(0, 0) = 1.0;
  d(1, 2) = -2.0;
  EXPECT_THROW(d.matmul(sp::Dense(2, 2)), std::invalid_argument);
  std::vector<double> x = {1.0, 0.0, 1.0};
  const auto y = d.matvec(x);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_THROW(sp::Dense::max_abs_diff(d, sp::Dense(3, 2)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Triangular solves.
// ---------------------------------------------------------------------

TEST(EdgeTrisolve, NonSquareRejected) {
  sp::CsrBuilder b(2, 3);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  const sp::Csr m = b.build();
  std::vector<double> rhs(2), y(2);
  EXPECT_THROW(sp::trisolve_lower_seq(m, rhs, y), std::invalid_argument);
  EXPECT_THROW(sp::trisolve_upper_seq(m, rhs, y), std::invalid_argument);
}

TEST(EdgeTrisolve, DiagonalOnlySystem) {
  sp::CsrBuilder b(4, 4);
  for (index_t i = 0; i < 4; ++i) b.add(i, i, static_cast<double>(i + 1));
  const sp::Csr m = b.build();
  std::vector<double> rhs = {1, 4, 9, 16}, y(4);
  sp::trisolve_lower_seq(m, rhs, y);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                     static_cast<double>(i + 1));
  }
  // Level analysis: one wavefront.
  EXPECT_EQ(sp::lower_solve_reordering(m).critical_path(), 1);
}

TEST(EdgeTrisolve, MachineEmulationZeroRepsIsPlainSolve) {
  const sp::Csr l = sp::ilu0(gen::five_point(6, 6)).l;
  std::vector<double> rhs(static_cast<std::size_t>(l.rows), 1.0);
  std::vector<double> y1(rhs.size()), y2(rhs.size());
  sp::trisolve_lower_seq(l, rhs, y1);
  sp::trisolve_lower_seq(l, rhs, y2, 0);
  EXPECT_EQ(y1, y2);
}

// ---------------------------------------------------------------------
// Krylov solvers.
// ---------------------------------------------------------------------

TEST(EdgeKrylov, CgReportsNonConvergenceOnIterationCap) {
  const sp::Csr a = gen::five_point(30, 30);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::pcg(a, b, x, solve::IdentityPreconditioner{},
                              {.max_iterations = 2, .rel_tolerance = 1e-14});
  EXPECT_FALSE(rep.converged);
  EXPECT_EQ(rep.iterations, 2);
  EXPECT_GT(rep.final_relative_residual, 1e-14);
}

TEST(EdgeKrylov, GmresReportsNonConvergenceOnIterationCap) {
  const sp::Csr a = gen::matrix_spe5(3);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::gmres(a, b, x, solve::IdentityPreconditioner{},
                                {.restart = 5, .max_iterations = 3,
                                 .rel_tolerance = 1e-14});
  EXPECT_FALSE(rep.converged);
  EXPECT_LE(rep.iterations, 3);
}

TEST(EdgeKrylov, HistoryDisabled) {
  const sp::Csr a = gen::five_point(8, 8);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::pcg(a, b, x, solve::Ilu0Preconditioner{a},
                              {.record_history = false});
  EXPECT_TRUE(rep.converged);
  EXPECT_TRUE(rep.residual_history.empty());
}

TEST(EdgeKrylov, GmresRejectsBadRestart) {
  const sp::Csr a = gen::five_point(4, 4);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 1.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  EXPECT_THROW(solve::gmres(a, b, x, solve::IdentityPreconditioner{},
                            {.restart = 0}),
               std::invalid_argument);
}

TEST(EdgeKrylov, WarmStartFromExactSolution) {
  const sp::Csr a = gen::five_point(10, 10);
  std::vector<double> x_true(static_cast<std::size_t>(a.rows), 0.5);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  sp::spmv(a, x_true, b);
  std::vector<double> x = x_true;  // start at the answer
  const auto rep = solve::pcg(a, b, x, solve::IdentityPreconditioner{});
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, 0);
}

// ---------------------------------------------------------------------
// Engine degenerate shapes.
// ---------------------------------------------------------------------

TEST(EdgeEngine, SingleIterationLoop) {
  rt::ThreadPool pool(4);
  std::vector<index_t> writer = {3};
  std::vector<double> y(8, 1.0);
  core::DoacrossEngine<double> eng(pool, 8);
  eng.run(writer, std::span<double>(y), [](auto& it) {
    it.lhs() = it.read(5) + 1.0;  // never-written offset
  });
  EXPECT_DOUBLE_EQ(y[3], 2.0);
}

TEST(EdgeEngine, BodyThatIgnoresLhsKeepsOldValue) {
  rt::ThreadPool pool(4);
  std::vector<index_t> writer = {0, 1, 2};
  std::vector<double> y = {7.0, 8.0, 9.0};
  core::DoacrossEngine<double> eng(pool, 3);
  eng.run(writer, std::span<double>(y), [](auto&) {});
  // lhs() initialized from the old value and committed unchanged.
  EXPECT_EQ(y, (std::vector<double>{7.0, 8.0, 9.0}));
}

TEST(EdgeEngine, PoolWiderThanLoop) {
  rt::ThreadPool pool(16);
  std::vector<index_t> writer = {0, 1};
  std::vector<double> y(2, 0.0);
  core::DoacrossEngine<double> eng(pool, 2);
  eng.run(writer, std::span<double>(y), [](auto& it) {
    it.lhs() = static_cast<double>(it.index());
  });
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

TEST(EdgeDoconsider, EmptyAndSingleton) {
  const core::Reordering r0 = core::doconsider_order(
      0, [](index_t, const core::DepVisitor&) {});
  EXPECT_EQ(r0.iterations(), 0);
  EXPECT_EQ(r0.num_levels(), 0);
  EXPECT_DOUBLE_EQ(r0.average_parallelism(), 0.0);

  const core::Reordering r1 = core::doconsider_order(
      1, [](index_t, const core::DepVisitor&) {});
  EXPECT_EQ(r1.iterations(), 1);
  EXPECT_EQ(r1.num_levels(), 1);
  EXPECT_EQ(r1.order[0], 0);
}

TEST(EdgeSchedule, SingleIterationAllPolicies) {
  for (const auto& s :
       {rt::Schedule::static_block(), rt::Schedule::static_cyclic(3),
        rt::Schedule::dynamic(2)}) {
    std::atomic<index_t> cursor{0};
    int count = 0;
    rt::schedule_run(s, 1, 0, 1, &cursor, [&](index_t i) {
      EXPECT_EQ(i, 0);
      ++count;
    });
    EXPECT_EQ(count, 1) << rt::to_string(s);
  }
}

TEST(EdgeTestLoop, LargeLWithSmallM) {
  // L = 14, M = 1: single read at distance 6 when even.
  const gen::TestLoop tl = gen::make_test_loop({.n = 100, .m = 1, .l = 14});
  const core::DepGraph g = gen::test_loop_deps(tl);
  for (index_t i = 10; i < 90; ++i) {
    ASSERT_EQ(g.deps_of(i).size(), 1u);
    EXPECT_EQ(i - g.deps_of(i)[0], 6);  // L/2 - 1
  }
}

TEST(EdgeTestLoop, MGreaterThanHalfLMixesAllThreeKinds) {
  // L = 4, M = 5: j=1 -> true dep (distance 1), j=2 -> self, j>2 -> anti.
  const gen::TestLoop tl = gen::make_test_loop({.n = 100, .m = 5, .l = 4});
  const core::DepGraph g = gen::test_loop_deps(tl);
  for (index_t i = 10; i < 90; ++i) {
    ASSERT_EQ(g.deps_of(i).size(), 1u) << i;  // only the true dep counts
    EXPECT_EQ(i - g.deps_of(i)[0], 1);
  }
}
