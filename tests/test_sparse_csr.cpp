// Tests for the CSR container, builder, transpose, SpMV, and permutation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/permute.hpp"
#include "sparse/spmv.hpp"

namespace sp = pdx::sparse;
using pdx::index_t;

namespace {

sp::Csr small_matrix() {
  // [ 2 0 1 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  sp::CsrBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(0, 2, 1.0);
  b.add(1, 1, 3.0);
  b.add(2, 0, 4.0);
  b.add(2, 2, 5.0);
  return b.build();
}

}  // namespace

TEST(CsrBuilder, BuildsSortedValidatedMatrix) {
  const sp::Csr m = small_matrix();
  EXPECT_EQ(m.rows, 3);
  EXPECT_EQ(m.cols, 3);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_NO_THROW(m.validate());
  EXPECT_TRUE(m.rows_sorted());
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);  // absent entry
  EXPECT_EQ(m.find(2, 2), 4);
  EXPECT_EQ(m.find(1, 0), -1);
}

TEST(CsrBuilder, DuplicateEntriesAccumulate) {
  sp::CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, -1.0);
  const sp::Csr m = b.build();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(CsrBuilder, OutOfOrderInsertionSorts) {
  sp::CsrBuilder b(2, 4);
  b.add(1, 3, 1.0);
  b.add(1, 0, 2.0);
  b.add(0, 2, 3.0);
  b.add(1, 1, 4.0);
  const sp::Csr m = b.build();
  EXPECT_NO_THROW(m.validate());
  EXPECT_EQ(m.row_cols(1)[0], 0);
  EXPECT_EQ(m.row_cols(1)[1], 1);
  EXPECT_EQ(m.row_cols(1)[2], 3);
}

TEST(Csr, EmptyRowsAreHandled) {
  sp::CsrBuilder b(4, 4);
  b.add(0, 0, 1.0);
  b.add(3, 3, 1.0);
  const sp::Csr m = b.build();
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.row_nnz(2), 0);
  EXPECT_NO_THROW(m.validate());
}

TEST(Csr, TriangularPredicates) {
  sp::CsrBuilder lo(3, 3);
  lo.add(0, 0, 1.0);
  lo.add(1, 0, 1.0);
  lo.add(1, 1, 1.0);
  lo.add(2, 2, 1.0);
  const sp::Csr l = lo.build();
  EXPECT_TRUE(l.is_lower_triangular());
  EXPECT_FALSE(l.is_upper_triangular());
  const sp::Csr u = l.transposed();
  EXPECT_TRUE(u.is_upper_triangular());
  EXPECT_FALSE(u.is_lower_triangular());
}

TEST(Csr, TransposeRoundTrip) {
  const sp::Csr m = small_matrix();
  const sp::Csr tt = m.transposed().transposed();
  ASSERT_EQ(tt.nnz(), m.nnz());
  for (index_t r = 0; r < m.rows; ++r) {
    for (index_t c = 0; c < m.cols; ++c) {
      EXPECT_DOUBLE_EQ(tt.at(r, c), m.at(r, c));
    }
  }
}

TEST(Spmv, MatchesDenseReference) {
  const sp::Csr m = small_matrix();
  const sp::Dense d = sp::Dense::from_csr(m);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3);
  sp::spmv(m, x, y);
  const std::vector<double> want = d.matvec(x);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], want[static_cast<std::size_t>(i)]);
}

TEST(Spmv, ParallelMatchesSequential) {
  // A banded matrix big enough to split across threads.
  const index_t n = 3000;
  sp::CsrBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0 + static_cast<double>(i % 7));
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -0.5);
  }
  const sp::Csr m = b.build();
  std::vector<double> x(n);
  for (index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));

  std::vector<double> y_seq(n), y_par(n);
  sp::spmv(m, x, y_seq);
  pdx::rt::ThreadPool pool(8);
  sp::spmv_parallel(pool, m, x, y_par);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(y_seq[static_cast<std::size_t>(i)],
                     y_par[static_cast<std::size_t>(i)]);
  }
}

TEST(Permute, SymmetricPermutationPreservesEntries) {
  const sp::Csr m = small_matrix();
  const std::vector<index_t> perm = {2, 0, 1};  // new k <- old perm[k]
  const sp::Csr p = sp::permute_symmetric(m, perm);
  EXPECT_NO_THROW(p.validate());
  const auto inv = sp::invert_permutation(perm);
  for (index_t r = 0; r < 3; ++r) {
    for (index_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(p.at(inv[static_cast<std::size_t>(r)],
                            inv[static_cast<std::size_t>(c)]),
                       m.at(r, c))
          << r << "," << c;
    }
  }
}

TEST(Permute, VectorGatherScatterRoundTrip) {
  const std::vector<double> v = {10, 20, 30, 40};
  const std::vector<index_t> perm = {3, 1, 0, 2};
  const auto g = sp::permute_vector(v, perm);
  EXPECT_EQ(g, (std::vector<double>{40, 20, 10, 30}));
  const auto back = sp::unpermute_vector(g, perm);
  EXPECT_EQ(back, v);
}

TEST(Permute, InvertRejectsNonPermutation) {
  const std::vector<index_t> dup = {0, 0, 1};
  EXPECT_THROW(sp::invert_permutation(dup), std::invalid_argument);
  const std::vector<index_t> oob = {0, 5, 1};
  EXPECT_THROW(sp::invert_permutation(oob), std::invalid_argument);
}

TEST(CsrValidate, CatchesBrokenStructures) {
  sp::Csr m(2, 2);
  m.ptr = {0, 1, 2};
  m.idx = {0, 5};  // out of range
  m.val = {1.0, 2.0};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.idx = {0, 0};
  EXPECT_NO_THROW(m.validate());
  m.ptr = {0, 2, 2};
  EXPECT_THROW(m.validate(), std::invalid_argument);  // row 0 has cols {0,0}: dup
}
