// Tests for the memory-bounded hash last-writer table and the compact
// strip-mined doacross built on it.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/blocked_doacross.hpp"
#include "core/hash_iter_table.hpp"
#include "gen/random_loop.hpp"
#include "gen/rng.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

}  // namespace

TEST(HashIterTable, RecordsAndLooksUp) {
  core::HashIterTable t(8);
  EXPECT_TRUE(t.pristine());
  t.record(1000000007, 3);  // offsets can be arbitrarily large
  t.record(42, 7);
  EXPECT_EQ(t[1000000007], 3);
  EXPECT_EQ(t[42], 7);
  EXPECT_EQ(t[43], core::kNeverWritten);
  EXPECT_FALSE(t.pristine());
}

TEST(HashIterTable, CapacityIsPowerOfTwoAndBounded) {
  core::HashIterTable t(100);
  EXPECT_EQ(t.capacity(), 256);  // next pow2 of 200
  EXPECT_EQ(t.memory_bytes(), 256u * 16u);
  core::HashIterTable tiny(0);
  EXPECT_GE(tiny.capacity(), 2);
}

TEST(HashIterTable, HandlesCollisionHeavyFill) {
  // Insert up to the load-factor limit; every entry must be retrievable.
  const index_t n = 1000;
  core::HashIterTable t(n);
  for (index_t i = 0; i < n; ++i) t.record(i * 977 + 13, i);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(t[i * 977 + 13], i) << i;
  }
  // Nearby non-members miss.
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(t[i * 977 + 14], core::kNeverWritten);
  }
}

TEST(HashIterTable, EpochWipeResetsEverything) {
  core::HashIterTable t(16);
  for (index_t i = 0; i < 16; ++i) t.record(100 + i, i);
  t.begin_epoch();
  EXPECT_TRUE(t.pristine());
  for (index_t i = 0; i < 16; ++i) {
    EXPECT_EQ(t[100 + i], core::kNeverWritten);
  }
  // Reusable after the wipe.
  t.record(5, 9);
  EXPECT_EQ(t[5], 9);
}

TEST(HashIterTable, ParallelInsertionIsLossless) {
  const index_t n = 4096;
  core::HashIterTable t(n);
  rt::ThreadPool wide(8);
  // Distinct offsets per iteration (injective writer), inserted from 8
  // threads concurrently — the inspector-phase contract.
  wide.parallel_for(n, 8, [&](index_t i) { t.record(3 * i + 1, i); });
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(t[3 * i + 1], i) << i;
    ASSERT_EQ(t[3 * i], core::kNeverWritten);
  }
}

TEST(HashIterTable, ReserveKeepsCapacityWhenPossible) {
  core::HashIterTable t(100);
  const index_t cap = t.capacity();
  t.record(1, 1);
  t.reserve_writes(100);  // same capacity: wipe, no realloc
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_TRUE(t.pristine());
  t.reserve_writes(10000);
  EXPECT_GT(t.capacity(), cap);
}

TEST(HashIterTable, ReserveGrowsAfterOverflowedEpochDespiteStaleHint) {
  // Regression: reserve_writes used to keep the existing capacity whenever
  // the hint mapped to the same power of two — even after an epoch had
  // inserted more keys than the load-factor budget (capacity/2), i.e. the
  // hint was proven wrong. The table now counts per-epoch inserts, records
  // the overflow, and grows past the stale hint at the next reserve.
  core::HashIterTable t(8);  // capacity 16, insert budget 8
  const index_t cap = t.capacity();
  ASSERT_EQ(cap, 16);
  for (index_t i = 0; i < 12; ++i) t.record(i * 31 + 7, i);  // 12 > 8
  EXPECT_EQ(t.epoch_writes(), 12u);
  EXPECT_EQ(t.overflow_epochs(), 0u) << "folded at the next epoch boundary";

  t.reserve_writes(8);  // identical stale hint
  EXPECT_EQ(t.overflow_epochs(), 1u);
  EXPECT_GT(t.capacity(), cap) << "stale capacity must not survive overflow";
  EXPECT_TRUE(t.pristine());
  // The learned floor covers the observed write count at load <= 0.5 and
  // sticks: repeating the stale hint later must not shrink back.
  EXPECT_GE(t.capacity(), 32);
  const index_t grown = t.capacity();
  for (index_t i = 0; i < 12; ++i) t.record(i * 31 + 7, i);  // fits now
  t.reserve_writes(8);
  EXPECT_EQ(t.overflow_epochs(), 1u) << "12 of 16 budget: no new overflow";
  EXPECT_EQ(t.capacity(), grown);

  // begin_epoch also folds the overflow record (engine postprocess path).
  core::HashIterTable u(4);  // capacity 8, budget 4
  for (index_t i = 0; i < 7; ++i) u.record(i * 13 + 1, i);
  u.begin_epoch();
  EXPECT_EQ(u.overflow_epochs(), 1u);
  EXPECT_EQ(u.capacity(), 8) << "wipe cannot realloc between barriers";
  u.reserve_writes(4);
  EXPECT_GE(u.capacity(), 16) << "growth applied at the next reserve point";
}

TEST(CompactBlockedDoacross, MatchesReferenceOnPaperLoop) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 1200, .m = 5, .l = 8});
  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);

  for (index_t strip : {32, 128, 1200}) {
    std::vector<double> y_cmp = gen::make_initial_y(tl);
    core::CompactBlockedDoacross<double> blk(pool(), tl.value_space);
    blk.run(std::span<const index_t>(tl.a), std::span<double>(y_cmp),
            [&tl](auto& it) { gen::test_loop_body(tl, it); }, strip);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_cmp[i]) << "strip " << strip << " offset " << i;
    }
  }
}

TEST(CompactBlockedDoacross, MatchesReferenceOnRandomLoops) {
  for (std::uint64_t seed : {5u, 15u, 25u}) {
    gen::RandomLoopParams p{.n = 700, .value_space = 5000, .min_reads = 1,
                            .max_reads = 4, .dep_bias = 0.6};
    const gen::RandomLoop rl = gen::make_random_loop(p, seed);
    std::vector<double> y_ref = rl.y0;
    gen::run_random_loop_seq(rl, y_ref);

    std::vector<double> y_cmp = rl.y0;
    core::CompactBlockedDoacross<double> blk(pool(), rl.value_space);
    blk.run(std::span<const index_t>(rl.writer), std::span<double>(y_cmp),
            [&rl](auto& it) { gen::random_loop_body(rl, it); }, 96);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_cmp[i]) << "seed " << seed;
    }
  }
}

TEST(CompactBlockedDoacross, IterMemoryIndependentOfValueSpace) {
  // The whole point: a huge sparsely-written value space with a bounded
  // arena. 10M-slot value space, strip 256.
  const index_t n = 2000;
  const index_t space = 10'000'000;
  gen::SplitMix64 rng(77);
  std::vector<index_t> writer(static_cast<std::size_t>(n));
  std::set<index_t> used;
  for (auto& w : writer) {
    index_t cand;
    do {
      cand = rng.next_index(space);
    } while (!used.insert(cand).second);
    w = cand;
  }
  // y as a (sparse stand-in) dense vector would be 80 MB; we only touch
  // the written offsets plus a few reads, but the doacross API takes the
  // dense span, so allocate it — the point under test is the *arena*.
  std::vector<double> y(static_cast<std::size_t>(space), 0.5);

  core::CompactBlockedDoacross<double> blk(pool(), space);
  blk.run(std::span<const index_t>(writer), std::span<double>(y),
          [](auto& it) { it.lhs() += 1.0; }, 256);
  // Hash arena: 2*256 slots -> 512 * 16 B = 8 KiB, vs 80 MB dense iter.
  EXPECT_LE(blk.iter_memory_bytes(), 16u * 1024u);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(y[static_cast<std::size_t>(writer[static_cast<std::size_t>(i)])],
                     1.5);
  }
}

TEST(CompactBlockedDoacross, DenseFlavourReportsDenseBytes) {
  core::BlockedDoacross<double> dense(pool(), 1 << 20);
  EXPECT_EQ(dense.iter_memory_bytes(), (1u << 20) * sizeof(index_t));
}
