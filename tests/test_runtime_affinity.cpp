// Tests for the affinity helpers (best-effort on Linux, no-ops elsewhere).
#include <gtest/gtest.h>

#include <thread>

#include "runtime/affinity.hpp"

namespace rt = pdx::rt;

TEST(Affinity, AllowedCpusIsPositive) {
  EXPECT_GE(rt::allowed_cpus(), 1u);
}

TEST(Affinity, PinningToCpuZeroFromScratchThread) {
  // CPU 0 exists on every machine; pin a scratch thread, never the test
  // runner itself. Failure is tolerated (containers may restrict masks),
  // but the call must not crash or hang.
  std::thread t([] {
    const bool ok = rt::pin_this_thread(0);
#if defined(__linux__)
    EXPECT_TRUE(ok);
    EXPECT_EQ(rt::allowed_cpus(), 1u);
#else
    (void)ok;
#endif
  });
  t.join();
}

TEST(Affinity, PinningToAbsurdCpuFails) {
  std::thread t([] {
    EXPECT_FALSE(rt::pin_this_thread(100000));
  });
  t.join();
}
