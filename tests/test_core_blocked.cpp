// Tests for the strip-mined (§2.3) doacross: bitwise equivalence with the
// sequential reference and the unblocked engine for every strip size,
// including strips of 1 (fully sequential outer) and strips >= N.
#include <gtest/gtest.h>

#include <vector>

#include "core/blocked_doacross.hpp"
#include "core/doacross.hpp"
#include "gen/random_loop.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

}  // namespace

class StripSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(StripSweep, MatchesReferenceOnPaperLoop) {
  const index_t strip = GetParam();
  const gen::TestLoop tl = gen::make_test_loop({.n = 1500, .m = 5, .l = 6});

  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);

  std::vector<double> y_blk = gen::make_initial_y(tl);
  core::BlockedDoacross<double> blk(pool(), tl.value_space);
  blk.run(std::span<const index_t>(tl.a), std::span<double>(y_blk),
          [&tl](auto& it) { gen::test_loop_body(tl, it); }, strip);

  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_blk[i]) << "strip=" << strip << " offset " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Strips, StripSweep,
                         ::testing::Values<index_t>(1, 2, 7, 64, 256, 1024,
                                                    1500, 4000));

TEST(BlockedDoacross, MatchesReferenceOnRandomLoops) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    gen::RandomLoopParams p{.n = 900, .value_space = 1300, .min_reads = 1,
                            .max_reads = 4, .dep_bias = 0.7};
    const gen::RandomLoop rl = gen::make_random_loop(p, seed);

    std::vector<double> y_ref = rl.y0;
    gen::run_random_loop_seq(rl, y_ref);

    std::vector<double> y_blk = rl.y0;
    core::BlockedDoacross<double> blk(pool(), rl.value_space);
    blk.run(std::span<const index_t>(rl.writer), std::span<double>(y_blk),
            [&rl](auto& it) { gen::random_loop_body(rl, it); }, 128);

    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_blk[i]) << "seed " << seed << " offset " << i;
    }
  }
}

TEST(BlockedDoacross, IterTablePristineBetweenRuns) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 300, .m = 3, .l = 4});
  core::BlockedDoacross<double> blk(pool(), tl.value_space);
  std::vector<double> y = gen::make_initial_y(tl);
  for (int rep = 0; rep < 4; ++rep) {
    blk.run(std::span<const index_t>(tl.a), std::span<double>(y),
            [&tl](auto& it) { gen::test_loop_body(tl, it); }, 50);
    ASSERT_TRUE(blk.iter_table().pristine());
  }
}

TEST(BlockedDoacross, ArenaMemoryScalesWithStripNotValueSpace) {
  using Blk = core::BlockedDoacross<double>;
  EXPECT_EQ(Blk::strip_arena_bytes(64), 64 * (sizeof(double) + 1));
  EXPECT_LT(Blk::strip_arena_bytes(64), Blk::strip_arena_bytes(1 << 20));
}

TEST(BlockedDoacross, RejectsBadArguments) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 50, .m = 2, .l = 2});
  core::BlockedDoacross<double> blk(pool(), tl.value_space);
  std::vector<double> y = gen::make_initial_y(tl);
  EXPECT_THROW(blk.run(std::span<const index_t>(tl.a), std::span<double>(y),
                       [](auto&) {}, 0),
               std::invalid_argument);
  EXPECT_THROW(blk.run(std::span<const index_t>(tl.a), std::span<double>(y),
                       [](auto&) {}, -5),
               std::invalid_argument);
}

TEST(BlockedDoacross, DynamicScheduleInsideStrips) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 1000, .m = 4, .l = 8});
  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);

  std::vector<double> y_blk = gen::make_initial_y(tl);
  core::BlockedDoacross<double> blk(pool(), tl.value_space);
  core::BlockedOptions opts;
  opts.schedule = rt::Schedule::dynamic(8);
  blk.run(std::span<const index_t>(tl.a), std::span<double>(y_blk),
          [&tl](auto& it) { gen::test_loop_body(tl, it); }, 200, opts);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_blk[i]);
  }
}

TEST(BlockedDoacross, EpochReadyVariantMatches) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 800, .m = 3, .l = 10});
  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);

  std::vector<double> y_blk = gen::make_initial_y(tl);
  core::BlockedDoacross<double, core::EpochReadyTable> blk(pool(),
                                                           tl.value_space);
  blk.run(std::span<const index_t>(tl.a), std::span<double>(y_blk),
          [&tl](auto& it) { gen::test_loop_body(tl, it); }, 100);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_blk[i]);
  }
}
