// Tests for the dependence-aware schedule advisor.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/advisor.hpp"
#include "gen/block_operator.hpp"
#include "gen/testloop.hpp"
#include "gen/random_loop.hpp"
#include "sparse/ilu0.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

core::DepGraph graph_from_lists(std::vector<std::vector<index_t>> deps) {
  core::DepGraph g;
  g.ptr.push_back(0);
  for (const auto& d : deps) {
    for (index_t j : d) g.adj.push_back(j);
    g.ptr.push_back(static_cast<index_t>(g.adj.size()));
  }
  return g;
}

}  // namespace

TEST(Advisor, DoallGetsBlockSchedule) {
  const core::DepGraph g = graph_from_lists(
      std::vector<std::vector<index_t>>(100, std::vector<index_t>{}));
  const auto a = core::advise_schedule(g, 8);
  EXPECT_EQ(a.schedule.kind, rt::SchedKind::StaticBlock);
  EXPECT_FALSE(a.use_reordering);
  EXPECT_TRUE(a.worth_parallelizing);
}

TEST(Advisor, SerialChainNotWorthParallelizing) {
  std::vector<std::vector<index_t>> deps(64);
  for (index_t i = 1; i < 64; ++i) deps[static_cast<std::size_t>(i)] = {i - 1};
  const auto a = core::advise_schedule(graph_from_lists(std::move(deps)), 8);
  EXPECT_FALSE(a.worth_parallelizing);
  EXPECT_EQ(a.critical_path, 64);
  EXPECT_DOUBLE_EQ(a.avg_parallelism, 1.0);
}

TEST(Advisor, ShortDistanceDepsGetBlockSchedule) {
  // 10000 iterations, deps at distance <= 3, 8 procs -> block = 1250,
  // distance * 8 = 24 << block.
  std::vector<std::vector<index_t>> deps(10000);
  for (index_t i = 3; i < 10000; i += 2) {
    deps[static_cast<std::size_t>(i)] = {i - 3};
  }
  const auto a = core::advise_schedule(graph_from_lists(std::move(deps)), 8);
  EXPECT_EQ(a.schedule.kind, rt::SchedKind::StaticBlock);
  EXPECT_FALSE(a.use_reordering);
  EXPECT_TRUE(a.worth_parallelizing);
  EXPECT_EQ(a.max_distance, 3);
}

TEST(Advisor, LongDistanceDepsGetReorderedDynamic) {
  // Chains with stride n/4: long-distance, plenty of level parallelism.
  const index_t n = 1024;
  std::vector<std::vector<index_t>> deps(static_cast<std::size_t>(n));
  for (index_t i = n / 4; i < n; ++i) {
    deps[static_cast<std::size_t>(i)] = {i - n / 4};
  }
  const auto a = core::advise_schedule(graph_from_lists(std::move(deps)), 8);
  EXPECT_EQ(a.schedule.kind, rt::SchedKind::Dynamic);
  EXPECT_TRUE(a.use_reordering);
  EXPECT_TRUE(a.worth_parallelizing);
  EXPECT_DOUBLE_EQ(a.avg_parallelism, static_cast<double>(n) / 4.0);
}

TEST(Advisor, PaperTestLoopOddAndEven) {
  // Odd L: doall -> block. Even L: short distances -> block (E6's
  // measured winner for the Fig. 4 loop).
  const gen::TestLoop odd = gen::make_test_loop({.n = 2000, .m = 5, .l = 7});
  const auto a_odd =
      core::advise_schedule(gen::test_loop_deps(odd), 16);
  EXPECT_EQ(a_odd.schedule.kind, rt::SchedKind::StaticBlock);
  EXPECT_FALSE(a_odd.use_reordering);

  const gen::TestLoop even = gen::make_test_loop({.n = 2000, .m = 5, .l = 8});
  const auto a_even =
      core::advise_schedule(gen::test_loop_deps(even), 16);
  EXPECT_EQ(a_even.schedule.kind, rt::SchedKind::StaticBlock);
  EXPECT_EQ(a_even.max_distance, 3);  // L/2 - 1
}

TEST(Advisor, SparseFactorGetsReorderedDynamic) {
  // The ILU(0) factor of SPE5 has long-distance dependences (mean ~271):
  // the advisor must land on the Table 1 configuration.
  const auto l = pdx::sparse::ilu0(gen::matrix_spe5()).l;
  core::DepGraph g;
  g.ptr.assign(static_cast<std::size_t>(l.rows) + 1, 0);
  for (index_t i = 0; i < l.rows; ++i) {
    index_t c = 0;
    for (index_t col : l.row_cols(i)) {
      if (col < i) ++c;
    }
    g.ptr[static_cast<std::size_t>(i) + 1] =
        g.ptr[static_cast<std::size_t>(i)] + c;
  }
  g.adj.resize(static_cast<std::size_t>(g.ptr.back()));
  std::vector<index_t> cur(g.ptr.begin(), g.ptr.end() - 1);
  for (index_t i = 0; i < l.rows; ++i) {
    for (index_t col : l.row_cols(i)) {
      if (col < i) {
        g.adj[static_cast<std::size_t>(cur[static_cast<std::size_t>(i)]++)] =
            col;
      }
    }
  }
  const auto a = core::advise_schedule(g, 16);
  EXPECT_EQ(a.schedule.kind, rt::SchedKind::Dynamic);
  EXPECT_TRUE(a.use_reordering);
  EXPECT_GT(a.avg_parallelism, 10.0);
}

TEST(Advisor, ZeroProcsMeansHardwareWidth) {
  // procs == 0 follows the ThreadPool(width = 0) convention everywhere
  // else: normalize to the hardware width instead of throwing.
  std::vector<std::vector<index_t>> deps(256);
  for (index_t i = 1; i < 256; ++i) deps[static_cast<std::size_t>(i)] = {i - 1};
  const core::DepGraph g = graph_from_lists(std::move(deps));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto a0 = core::advise_schedule(g, 0);
  const auto ahw = core::advise_schedule(g, hw);
  EXPECT_EQ(a0.schedule.kind, ahw.schedule.kind);
  EXPECT_EQ(a0.strategy, ahw.strategy);
  EXPECT_EQ(a0.worth_parallelizing, ahw.worth_parallelizing);
}

TEST(Advisor, DepGraphAdviceNamesAStrategy) {
  // The DepGraph overload's four outcomes map onto the executor
  // strategies the trisolve stack instantiates.
  const auto doall = core::advise_schedule(
      graph_from_lists(
          std::vector<std::vector<index_t>>(64, std::vector<index_t>{})),
      4);
  EXPECT_EQ(doall.strategy, core::ExecStrategy::kLevelBarrier);

  std::vector<std::vector<index_t>> chain(64);
  for (index_t i = 1; i < 64; ++i) chain[static_cast<std::size_t>(i)] = {i - 1};
  EXPECT_EQ(core::advise_schedule(graph_from_lists(std::move(chain)), 4)
                .strategy,
            core::ExecStrategy::kSerial);

  std::vector<std::vector<index_t>> shortd(10000);
  for (index_t i = 3; i < 10000; i += 2) {
    shortd[static_cast<std::size_t>(i)] = {i - 3};
  }
  EXPECT_EQ(core::advise_schedule(graph_from_lists(std::move(shortd)), 8)
                .strategy,
            core::ExecStrategy::kBlockedHybrid);

  std::vector<std::vector<index_t>> longd(1024);
  for (index_t i = 256; i < 1024; ++i) {
    longd[static_cast<std::size_t>(i)] = {i - 256};
  }
  EXPECT_EQ(core::advise_schedule(graph_from_lists(std::move(longd)), 8)
                .strategy,
            core::ExecStrategy::kDoacross);
}

TEST(Advisor, TrisolveStructureOverload) {
  // Wide, shallow wavefronts -> level-barrier; no flags needed.
  core::TrisolveStructure wide;
  wide.n = 1000;
  wide.nnz = 4000;
  wide.levels = 20;
  wide.avg_level_width = 50.0;
  wide.max_level_size = 80;
  wide.max_distance = 400;
  const auto lb = core::advise_schedule(wide, 8);
  EXPECT_EQ(lb.strategy, core::ExecStrategy::kLevelBarrier);
  EXPECT_TRUE(lb.worth_parallelizing);
  EXPECT_FALSE(lb.rationale.empty());

  // Chain: serial, not worth parallelizing.
  core::TrisolveStructure chain = wide;
  chain.levels = 1000;
  chain.avg_level_width = 1.0;
  const auto ser = core::advise_schedule(chain, 8);
  EXPECT_EQ(ser.strategy, core::ExecStrategy::kSerial);
  EXPECT_FALSE(ser.worth_parallelizing);

  // Moderate width, short distances: blocked-hybrid.
  core::TrisolveStructure banded = wide;
  banded.levels = 250;
  banded.avg_level_width = 4.0;
  banded.max_distance = 4;
  const auto bh = core::advise_schedule(banded, 4);
  EXPECT_EQ(bh.strategy, core::ExecStrategy::kBlockedHybrid);

  // Moderate width, long distances: flag-based doacross.
  core::TrisolveStructure scattered = banded;
  scattered.max_distance = 700;
  const auto da = core::advise_schedule(scattered, 4);
  EXPECT_EQ(da.strategy, core::ExecStrategy::kDoacross);
  EXPECT_EQ(da.schedule.kind, rt::SchedKind::Dynamic);
  EXPECT_TRUE(da.use_reordering);

  // Single processor: nothing to overlap, serial regardless of shape.
  EXPECT_EQ(core::advise_schedule(wide, 1).strategy,
            core::ExecStrategy::kSerial);
}

TEST(Advisor, EmptyLoop) {
  core::DepGraph g;
  g.ptr = {0};
  const auto a = core::advise_schedule(g, 4);
  EXPECT_TRUE(a.worth_parallelizing);
  EXPECT_EQ(a.schedule.kind, rt::SchedKind::StaticBlock);
}

TEST(Advisor, FactorAdvisorFollowsEliminationWorkRatio) {
  // The factorization advisor sees the same dependence DAG as the solve
  // advisor but weighs each row as a whole elimination step, so its
  // thresholds admit parallelism earlier.
  core::TrisolveStructure wide;
  wide.n = 1000;
  wide.nnz = 4000;
  wide.levels = 20;
  wide.avg_level_width = 50.0;
  wide.max_level_size = 80;
  wide.max_distance = 400;
  wide.nnz_per_row = 4.0;
  const auto lb = core::advise_factor_schedule(wide, 8);
  EXPECT_EQ(lb.strategy, core::ExecStrategy::kLevelBarrier);
  EXPECT_TRUE(lb.worth_parallelizing);
  EXPECT_FALSE(lb.rationale.empty());

  // Width 1.4: the solve advisor runs this serially, but one elimination
  // row buys ~nnz/row updates — worth overlapping.
  core::TrisolveStructure narrow = wide;
  narrow.levels = 714;
  narrow.avg_level_width = 1.4;
  narrow.max_distance = 700;
  EXPECT_EQ(core::advise_schedule(narrow, 8).strategy,
            core::ExecStrategy::kSerial);
  EXPECT_EQ(core::advise_factor_schedule(narrow, 8).strategy,
            core::ExecStrategy::kDoacross);

  // A true chain still factors sequentially.
  core::TrisolveStructure chain = wide;
  chain.levels = 1000;
  chain.avg_level_width = 1.0;
  const auto ser = core::advise_factor_schedule(chain, 8);
  EXPECT_EQ(ser.strategy, core::ExecStrategy::kSerial);
  EXPECT_FALSE(ser.worth_parallelizing);

  // Width >= 1 row/processor already hides a barrier behind elimination
  // work (the solve advisor demands 2): procs=8, width 8 -> level-barrier.
  core::TrisolveStructure medium = wide;
  medium.levels = 125;
  medium.avg_level_width = 8.0;
  medium.max_distance = 700;
  EXPECT_EQ(core::advise_schedule(medium, 8).strategy,
            core::ExecStrategy::kDoacross);
  EXPECT_EQ(core::advise_factor_schedule(medium, 8).strategy,
            core::ExecStrategy::kLevelBarrier);

  // Short-distance dependences: static blocks, flags only at boundaries.
  core::TrisolveStructure banded = wide;
  banded.levels = 500;
  banded.avg_level_width = 2.0;
  banded.max_distance = 4;
  EXPECT_EQ(core::advise_factor_schedule(banded, 4).strategy,
            core::ExecStrategy::kBlockedHybrid);

  // Single processor / empty system: serial, nothing to overlap.
  EXPECT_EQ(core::advise_factor_schedule(wide, 1).strategy,
            core::ExecStrategy::kSerial);
  core::TrisolveStructure empty;
  EXPECT_EQ(core::advise_factor_schedule(empty, 8).strategy,
            core::ExecStrategy::kSerial);
}

namespace {

core::TrisolveStructure sample_structure() {
  core::TrisolveStructure s;
  s.n = 1000;
  s.nnz = 4000;
  s.levels = 20;
  s.avg_level_width = 50.0;
  s.max_level_size = 80;
  s.max_distance = 400;
  return s;
}

}  // namespace

TEST(TuningCache, StoreLookupRoundtripAndKeyDiscrimination) {
  core::TuningCache& cache = core::tuning_cache();
  cache.clear();

  const core::TrisolveStructure s = sample_structure();
  const core::TuningKey solve_key = core::make_tuning_key(s, 4, false);
  const core::TuningKey factor_key = core::make_tuning_key(s, 4, true);

  core::ExecStrategy out;
  EXPECT_FALSE(cache.lookup(solve_key, out));
  cache.store(solve_key, core::ExecStrategy::kDoacross);
  ASSERT_TRUE(cache.lookup(solve_key, out));
  EXPECT_EQ(out, core::ExecStrategy::kDoacross);

  // The factor flag separates solve winners from factorization winners
  // over the identical pattern; thread count is part of the key too.
  EXPECT_FALSE(cache.lookup(factor_key, out));
  EXPECT_FALSE(cache.lookup(core::make_tuning_key(s, 8, false), out));
  cache.store(factor_key, core::ExecStrategy::kLevelBarrier);
  ASSERT_TRUE(cache.lookup(factor_key, out));
  EXPECT_EQ(out, core::ExecStrategy::kLevelBarrier);
  ASSERT_TRUE(cache.lookup(solve_key, out));
  EXPECT_EQ(out, core::ExecStrategy::kDoacross);

  // A re-store over the same key overwrites (newest measurement wins).
  cache.store(solve_key, core::ExecStrategy::kSerial);
  ASSERT_TRUE(cache.lookup(solve_key, out));
  EXPECT_EQ(out, core::ExecStrategy::kSerial);

  const core::TuningCacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 2u);
  EXPECT_EQ(st.stores, 3u);
  EXPECT_EQ(st.hits, 4u);
  EXPECT_EQ(st.misses, 3u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(solve_key, out));
}

TEST(TuningCache, ConcurrentStoresAndLookupsAreSafe) {
  // The cache is process-wide shared mutable state: plans on different
  // pools may race store() against lookup(). Hammer it from several
  // threads (TSan covers this test in CI) and check every key resolves.
  core::TuningCache& cache = core::tuning_cache();
  cache.clear();
  const core::TrisolveStructure base = sample_structure();

  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 200; ++round) {
        const int k = (t + round) % kKeys;
        core::TrisolveStructure s = base;
        s.n = base.n + k;
        const core::TuningKey key =
            core::make_tuning_key(s, 4, (t % 2) != 0);
        cache.store(key, core::ExecStrategy::kDoacross);
        core::ExecStrategy out;
        cache.lookup(key, out);
      }
    });
  }
  for (auto& w : workers) w.join();

  for (int k = 0; k < kKeys; ++k) {
    core::TrisolveStructure s = base;
    s.n = base.n + k;
    core::ExecStrategy out;
    ASSERT_TRUE(cache.lookup(core::make_tuning_key(s, 4, false), out));
    EXPECT_EQ(out, core::ExecStrategy::kDoacross);
    ASSERT_TRUE(cache.lookup(core::make_tuning_key(s, 4, true), out));
  }
  cache.clear();
}
