// Tests for the Krylov substrate: PCG and GMRES convergence, the
// preconditioner hierarchy, and the doacross-backed ILU application.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/block_operator.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/cg.hpp"
#include "solve/gmres.hpp"
#include "solve/precond.hpp"
#include "sparse/spmv.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

std::vector<double> rhs_for_solution(const sp::Csr& a,
                                     std::vector<double>* x_true_out,
                                     std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> x(static_cast<std::size_t>(a.rows));
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  sp::spmv(a, x, b);
  if (x_true_out) *x_true_out = std::move(x);
  return b;
}

double max_err(std::span<const double> got, std::span<const double> want) {
  double m = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    m = std::max(m, std::fabs(got[i] - want[i]));
  }
  return m;
}

}  // namespace

TEST(Pcg, ConvergesOnPoissonWithIdentity) {
  const sp::Csr a = gen::five_point(20, 20);
  std::vector<double> x_true;
  const auto b = rhs_for_solution(a, &x_true, 1);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::pcg(a, b, x, solve::IdentityPreconditioner{});
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(rep.final_relative_residual, 1e-9);
  EXPECT_LT(max_err(x, x_true), 1e-6);
}

TEST(Pcg, Ilu0ConvergesFasterThanJacobiAndIdentity) {
  const sp::Csr a = gen::five_point(40, 40);
  const auto b = rhs_for_solution(a, nullptr, 2);

  auto run = [&](const solve::Preconditioner& m) {
    std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
    return solve::pcg(a, b, x, m);
  };
  const auto rep_id = run(solve::IdentityPreconditioner{});
  const auto rep_jac = run(solve::JacobiPreconditioner{a});
  const auto rep_ilu = run(solve::Ilu0Preconditioner{a});

  EXPECT_TRUE(rep_id.converged);
  EXPECT_TRUE(rep_jac.converged);
  EXPECT_TRUE(rep_ilu.converged);
  // ILU(0) must cut the iteration count substantially — that is why the
  // paper's triangular solves dominate Krylov run time.
  EXPECT_LT(rep_ilu.iterations, rep_id.iterations / 2);
  EXPECT_LE(rep_ilu.iterations, rep_jac.iterations);
}

TEST(Pcg, ResidualHistoryIsRecordedAndMonotoneAtTheEnd) {
  const sp::Csr a = gen::five_point(15, 15);
  const auto b = rhs_for_solution(a, nullptr, 3);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::pcg(a, b, x, solve::Ilu0Preconditioner{a});
  ASSERT_GE(rep.residual_history.size(), 2u);
  EXPECT_LT(rep.residual_history.back(), rep.residual_history.front());
}

TEST(Pcg, ZeroRhsReturnsImmediately) {
  const sp::Csr a = gen::five_point(8, 8);
  std::vector<double> b(static_cast<std::size_t>(a.rows), 0.0);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::pcg(a, b, x, solve::IdentityPreconditioner{});
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, 0);
}

TEST(Gmres, ConvergesOnNonsymmetricBlockOperator) {
  const sp::Csr a = gen::block_seven_point(
      {.nx = 4, .ny = 4, .nz = 2, .block = 3, .seed = 4});
  std::vector<double> x_true;
  const auto b = rhs_for_solution(a, &x_true, 5);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep =
      solve::gmres(a, b, x, solve::Ilu0Preconditioner{a}, {.restart = 20});
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(max_err(x, x_true), 1e-6);
}

TEST(Gmres, Ilu0BeatsIdentityOnIterationCount) {
  const sp::Csr a = gen::matrix_spe5(6);
  const auto b = rhs_for_solution(a, nullptr, 7);

  std::vector<double> x1(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_id = solve::gmres(a, b, x1, solve::IdentityPreconditioner{},
                                   {.restart = 30, .max_iterations = 500});
  std::vector<double> x2(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_ilu = solve::gmres(a, b, x2, solve::Ilu0Preconditioner{a},
                                    {.restart = 30, .max_iterations = 500});
  EXPECT_TRUE(rep_ilu.converged);
  EXPECT_LT(rep_ilu.iterations, rep_id.iterations);
}

TEST(Gmres, RestartOneStillConverges) {
  // GMRES(1) degenerates gracefully on an SPD matrix.
  const sp::Csr a = gen::five_point(10, 10);
  const auto b = rhs_for_solution(a, nullptr, 8);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep = solve::gmres(a, b, x, solve::Ilu0Preconditioner{a},
                                {.restart = 1, .max_iterations = 2000});
  EXPECT_TRUE(rep.converged);
}

TEST(Preconditioners, DoacrossIluMatchesSequentialIluApplication) {
  const sp::Csr a = gen::matrix_spe2(9);
  const solve::Ilu0Preconditioner seq(a);
  // Explicit kDoacross: the reorder knob only steers the flag-based
  // executor (under the default kAuto the advisor owns the ordering), so
  // pin the strategy to keep source-order doacross coverage meaningful.
  const solve::DoacrossIlu0Preconditioner par(
      pool(), a, /*reorder=*/true, /*nthreads=*/0,
      pdx::sparse::ExecutionStrategy::kDoacross);
  const solve::DoacrossIlu0Preconditioner par_src(
      pool(), a, /*reorder=*/false, /*nthreads=*/0,
      pdx::sparse::ExecutionStrategy::kDoacross);

  gen::SplitMix64 rng(10);
  std::vector<double> r(static_cast<std::size_t>(a.rows));
  for (auto& v : r) v = rng.next_double(-1.0, 1.0);

  std::vector<double> z_seq(r.size()), z_par(r.size()), z_src(r.size());
  seq.apply(r, z_seq);
  par.apply(r, z_par);
  par_src.apply(r, z_src);
  for (std::size_t i = 0; i < r.size(); ++i) {
    ASSERT_EQ(z_seq[i], z_par[i]) << i;
    ASSERT_EQ(z_seq[i], z_src[i]) << i;
  }
}

TEST(Preconditioners, DoacrossIluInsidePcgConverges) {
  const sp::Csr a = gen::five_point(30, 30);
  const auto b = rhs_for_solution(a, nullptr, 11);

  std::vector<double> x_seq(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_seq = solve::pcg(a, b, x_seq, solve::Ilu0Preconditioner{a});
  std::vector<double> x_par(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_par = solve::pcg(
      a, b, x_par, solve::DoacrossIlu0Preconditioner{pool(), a});

  EXPECT_TRUE(rep_seq.converged);
  EXPECT_TRUE(rep_par.converged);
  // The doacross application is bitwise equal, so the iteration paths
  // coincide exactly.
  EXPECT_EQ(rep_seq.iterations, rep_par.iterations);
  EXPECT_LT(max_err(x_par, x_seq), 1e-12);
}

TEST(Preconditioners, JacobiRejectsZeroDiagonal) {
  sp::CsrBuilder bld(2, 2);
  bld.add(0, 0, 0.0);
  bld.add(1, 1, 1.0);
  const sp::Csr a = bld.build();
  EXPECT_THROW(solve::JacobiPreconditioner{a}, std::invalid_argument);
}

TEST(SolveGuards, MismatchedSizesThrow) {
  const sp::Csr a = gen::five_point(4, 4);
  std::vector<double> small(3), x(static_cast<std::size_t>(a.rows));
  EXPECT_THROW(solve::pcg(a, small, x, solve::IdentityPreconditioner{}),
               std::invalid_argument);
  EXPECT_THROW(solve::gmres(a, small, x, solve::IdentityPreconditioner{}),
               std::invalid_argument);
}
