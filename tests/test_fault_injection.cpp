// Fault-injection matrix for the containment layer (DESIGN.md §12): under
// every executor strategy, thread count, and factor layout, an injected
// worker exception or stalled producer must terminate the solve with the
// right exception (no hang), poison the plan, leave the shared ThreadPool
// reusable, and let BatchDriver keep serving through the sequential
// fallback. Also covers pivot recovery policies, Krylov breakdown
// reporting, the retry ladder, and input-validation messages.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/failure.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"
#include "solve/cg.hpp"
#include "solve/precond.hpp"
#include "solve/vec.hpp"
#include "sparse/csr.hpp"
#include "sparse/factor_plan.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

/// Tridiagonal SPD matrix: every row depends on the previous one, so a
/// fault or stall at any interior row is guaranteed to have downstream
/// waiters under every parallel strategy.
sp::Csr tridiag(index_t n) {
  sp::CsrBuilder b(n, n);
  for (index_t i = 0; i < n; ++i) {
    if (i > 0) b.add(i, i - 1, -1.0);
    b.add(i, i, 4.0);
    if (i < n - 1) b.add(i, i + 1, -1.0);
  }
  return b.build();
}

/// Dense 2x2 whose exact elimination produces u22 = 4 - 2*2 = 0: the
/// canonical natural zero pivot for the recovery-policy tests.
sp::Csr zero_pivot_2x2() {
  sp::CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, 4.0);
  return b.build();
}

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_double(-1.0, 1.0);
  return v;
}

void expect_pool_reusable() {
  std::atomic<int> hits{0};
  pool().parallel_region(4, [&](unsigned, unsigned) {
    hits.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits.load(), 4);
}

constexpr sp::ExecutionStrategy kAllStrategies[] = {
    sp::ExecutionStrategy::kDoacross, sp::ExecutionStrategy::kLevelBarrier,
    sp::ExecutionStrategy::kBlockedHybrid, sp::ExecutionStrategy::kSerial};

constexpr sp::ExecutionStrategy kParallelStrategies[] = {
    sp::ExecutionStrategy::kDoacross, sp::ExecutionStrategy::kLevelBarrier,
    sp::ExecutionStrategy::kBlockedHybrid};

constexpr sp::PlanLayout kLayouts[] = {sp::PlanLayout::kPacked,
                                       sp::PlanLayout::kCsrView};

}  // namespace

TEST(FaultInjection, InjectedThrowTerminatesEveryExecutor) {
  const index_t n = 400;
  const sp::Csr a = tridiag(n);
  const sp::IluFactors f = sp::ilu0(a);
  const auto rhs = random_vec(n, 1);
  std::vector<double> x(static_cast<std::size_t>(n));

  for (sp::ExecutionStrategy strategy : kAllStrategies) {
    for (unsigned nth : {2u, 4u}) {
      for (sp::PlanLayout layout : kLayouts) {
        SCOPED_TRACE(std::string(pdx::core::to_string(strategy)) + " nth=" +
                     std::to_string(nth) +
                     (layout == sp::PlanLayout::kPacked ? " packed"
                                                        : " csr-view"));
        sp::PlanOptions opts;
        opts.strategy = strategy;
        opts.nthreads = nth;
        opts.layout = layout;
        sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
        rt::FaultInjector inj;
        plan.set_fault_injector(&inj);

        // A healthy solve first: the harness must be zero-impact disarmed.
        plan.solve(rhs, x);
        std::vector<double> x_seq(static_cast<std::size_t>(n)),
            t_seq(static_cast<std::size_t>(n));
        sp::trisolve_lower_seq(f.l, rhs, t_seq);
        sp::trisolve_upper_seq(f.u, t_seq, x_seq);
        for (index_t i = 0; i < n; ++i) {
          ASSERT_EQ(x[static_cast<std::size_t>(i)],
                    x_seq[static_cast<std::size_t>(i)]);
        }

        inj.arm_throw(rt::FaultInjector::kAnyTid, n / 2);
        EXPECT_THROW(plan.solve(rhs, x), rt::InjectedFault);
        EXPECT_EQ(inj.faults_fired(), 1);
        EXPECT_TRUE(plan.poisoned());
        EXPECT_THROW(plan.solve(rhs, x), rt::PlanPoisonedError);
        EXPECT_THROW(plan.refresh_values(f), rt::PlanPoisonedError);
        expect_pool_reusable();
      }
    }
  }
}

TEST(FaultInjection, StalledProducerTripsWatchdogEveryParallelExecutor) {
  const index_t n = 400;
  const sp::Csr a = tridiag(n);
  const sp::IluFactors f = sp::ilu0(a);
  const auto rhs = random_vec(n, 2);
  std::vector<double> x(static_cast<std::size_t>(n));

  for (sp::ExecutionStrategy strategy : kParallelStrategies) {
    for (sp::PlanLayout layout : kLayouts) {
      SCOPED_TRACE(std::string(pdx::core::to_string(strategy)) +
                   (layout == sp::PlanLayout::kPacked ? " packed"
                                                      : " csr-view"));
      sp::PlanOptions opts;
      opts.strategy = strategy;
      opts.nthreads = 2;
      opts.layout = layout;
      opts.stall_budget = 8000;  // well past any healthy wait
      sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
      rt::FaultInjector inj;
      plan.set_fault_injector(&inj);
      // Row n/2-1 is the last row of thread 0's static block (nth=2), so
      // blocked-hybrid's only cross-block flag also stalls; the safety
      // valve is far beyond the watchdog budget, so the watchdog fires
      // first and the latch (not the valve) wakes the stalled producer.
      // "Far beyond" is measured in wall time, not rounds: on a loaded
      // one-core CI box each post-pause watchdog round is a yield that
      // can burn a scheduling quantum, so the budget's worst-case burn
      // runs to tens of seconds and the valve must stay well clear of it.
      inj.arm_stall(rt::FaultInjector::kAnyTid, n / 2 - 1,
                    /*max_stall_ms=*/240000);
      try {
        plan.solve(rhs, x);
        FAIL() << "expected rt::StallError";
      } catch (const rt::StallError& e) {
        EXPECT_GE(e.rounds(), opts.stall_budget);
      }
      EXPECT_EQ(inj.stalls_fired(), 1);
      EXPECT_TRUE(plan.poisoned());
      EXPECT_THROW(plan.solve(rhs, x), rt::PlanPoisonedError);
      expect_pool_reusable();
    }
  }
}

TEST(FaultInjection, SerialStallResumesThroughSafetyValve) {
  // A stalled serial executor has no peers and no watchdog waiter; the
  // injector's max_stall_ms valve must let it resume and finish with the
  // right answer instead of wedging the test run.
  const index_t n = 100;
  const sp::Csr a = tridiag(n);
  const sp::IluFactors f = sp::ilu0(a);
  const auto rhs = random_vec(n, 3);
  std::vector<double> x(static_cast<std::size_t>(n));

  sp::PlanOptions opts;
  opts.strategy = sp::ExecutionStrategy::kSerial;
  sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
  rt::FaultInjector inj;
  plan.set_fault_injector(&inj);
  inj.arm_stall(rt::FaultInjector::kAnyTid, n / 2, /*max_stall_ms=*/50);
  plan.solve(rhs, x);
  EXPECT_EQ(inj.stalls_fired(), 1);
  EXPECT_FALSE(plan.poisoned());

  std::vector<double> x_seq(static_cast<std::size_t>(n)),
      t_seq(static_cast<std::size_t>(n));
  sp::trisolve_lower_seq(f.l, rhs, t_seq);
  sp::trisolve_upper_seq(f.u, t_seq, x_seq);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(x[static_cast<std::size_t>(i)],
              x_seq[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultInjection, FactorPlanInjectedThrowPoisonsAndPoolSurvives) {
  const index_t n = 400;
  const sp::Csr a = tridiag(n);

  for (sp::ExecutionStrategy strategy : kParallelStrategies) {
    SCOPED_TRACE(pdx::core::to_string(strategy));
    sp::FactorPlanOptions opts;
    opts.strategy = strategy;
    opts.nthreads = 4;
    sp::FactorPlan fp(pool(), a, opts);
    sp::IluFactors f = fp.allocate_factors();
    rt::FaultInjector inj;
    fp.set_fault_injector(&inj);

    inj.arm_throw(rt::FaultInjector::kAnyTid, n / 2);
    EXPECT_THROW(fp.factorize(a, f), rt::InjectedFault);
    EXPECT_TRUE(fp.poisoned());
    EXPECT_THROW(fp.factorize(a, f), rt::PlanPoisonedError);
    expect_pool_reusable();
  }
}

TEST(FaultInjection, CorruptedPivotUnderThrowNamesRowAndRecovers) {
  const index_t n = 400;
  const sp::Csr a = tridiag(n);
  const sp::IluFactors ref = sp::ilu0(a);

  sp::FactorPlanOptions opts;
  opts.strategy = sp::ExecutionStrategy::kBlockedHybrid;
  opts.nthreads = 4;
  sp::FactorPlan fp(pool(), a, opts);
  sp::IluFactors f = fp.allocate_factors();
  rt::FaultInjector inj;
  fp.set_fault_injector(&inj);

  inj.arm_pivot_corruption(n / 2);
  try {
    fp.factorize(a, f);
    FAIL() << "expected a zero-pivot error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("row " + std::to_string(n / 2)),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(inj.pivots_corrupted(), 1);
  // A pivot throw does NOT poison: the corruption is one-shot, so a
  // refactorize rewrites every value and fully recovers the factors.
  EXPECT_FALSE(fp.poisoned());
  fp.factorize(a, f);
  for (std::size_t k = 0; k < ref.u.val.size(); ++k) {
    ASSERT_EQ(f.u.val[k], ref.u.val[k]);
  }
  for (std::size_t k = 0; k < ref.l.val.size(); ++k) {
    ASSERT_EQ(f.l.val[k], ref.l.val[k]);
  }
}

TEST(FaultInjection, ShiftPolicyRecoversNaturalZeroPivotBitwise) {
  const sp::Csr a = zero_pivot_2x2();
  // The sequential reference throws by default and recovers under kShift.
  try {
    sp::ilu0(a);
    FAIL() << "expected a zero-pivot error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos)
        << e.what();
  }
  sp::PivotOptions po;
  po.policy = sp::PivotPolicy::kShift;
  sp::PivotOutcome out;
  const sp::IluFactors ref = sp::ilu0(a, po, &out);
  EXPECT_EQ(out.shifted_pivots, 1u);
  EXPECT_EQ(out.shift_value, po.initial_shift);
  EXPECT_EQ(out.passes, 1);
  for (const double v : ref.u.val) EXPECT_TRUE(std::isfinite(v));

  // Every FactorPlan strategy must reproduce the shifted factors bitwise.
  for (sp::ExecutionStrategy strategy : kAllStrategies) {
    SCOPED_TRACE(pdx::core::to_string(strategy));
    sp::FactorPlanOptions opts;
    opts.strategy = strategy;
    opts.nthreads = 2;
    opts.pivot = po;
    sp::FactorPlan fp(pool(), a, opts);
    sp::IluFactors f = fp.allocate_factors();
    const sp::FactorStats st = fp.factorize(a, f);
    EXPECT_EQ(st.pivot_shifts, 1u);
    EXPECT_EQ(st.pivot_shift, po.initial_shift);
    EXPECT_EQ(st.shift_passes, 1);
    EXPECT_EQ(fp.telemetry().total_pivot_shifts, 1u);
    for (std::size_t k = 0; k < ref.u.val.size(); ++k) {
      ASSERT_EQ(f.u.val[k], ref.u.val[k]) << "u pos " << k;
    }
    for (std::size_t k = 0; k < ref.l.val.size(); ++k) {
      ASSERT_EQ(f.l.val[k], ref.l.val[k]) << "l pos " << k;
    }
  }
}

TEST(FaultInjection, ReplacePolicySubstitutesFixedPivot) {
  const sp::Csr a = zero_pivot_2x2();
  sp::PivotOptions po;
  po.policy = sp::PivotPolicy::kReplace;
  po.replacement = 1.0;
  sp::PivotOutcome out;
  const sp::IluFactors ref = sp::ilu0(a, po, &out);
  EXPECT_EQ(out.shifted_pivots, 1u);
  // U row 1 stores its diagonal first: the replaced pivot.
  EXPECT_EQ(ref.u.val[static_cast<std::size_t>(ref.u.row_begin(1))], 1.0);

  sp::FactorPlanOptions opts;
  opts.pivot = po;
  opts.strategy = sp::ExecutionStrategy::kSerial;
  sp::FactorPlan fp(pool(), a, opts);
  sp::IluFactors f = fp.allocate_factors();
  const sp::FactorStats st = fp.factorize(a, f);
  EXPECT_EQ(st.pivot_shifts, 1u);
  EXPECT_EQ(f.u.val[static_cast<std::size_t>(f.u.row_begin(1))], 1.0);
}

TEST(FaultInjection, CorruptedPivotUnderShiftRecoversInjected) {
  // Injected corruption plus kShift: the factorization self-heals in one
  // pass and produces finite factors.
  const index_t n = 400;
  const sp::Csr a = tridiag(n);
  sp::FactorPlanOptions opts;
  opts.strategy = sp::ExecutionStrategy::kDoacross;
  opts.nthreads = 4;
  opts.pivot.policy = sp::PivotPolicy::kShift;
  sp::FactorPlan fp(pool(), a, opts);
  sp::IluFactors f = fp.allocate_factors();
  rt::FaultInjector inj;
  fp.set_fault_injector(&inj);
  inj.arm_pivot_corruption(n / 2);
  const sp::FactorStats st = fp.factorize(a, f);
  EXPECT_EQ(inj.pivots_corrupted(), 1);
  EXPECT_GE(st.pivot_shifts, 1u);
  for (const double v : f.u.val) ASSERT_TRUE(std::isfinite(v));
  for (const double v : f.l.val) ASSERT_TRUE(std::isfinite(v));
}

TEST(FaultInjection, BatchDriverDegradesToSerialAndKeepsServing) {
  const index_t n = 400;
  const sp::Csr a = tridiag(n);
  solve::BatchDriverOptions o;
  o.method = solve::KrylovMethod::kCg;
  solve::BatchDriver drv(pool(), a, o);
  rt::FaultInjector inj;
  drv.set_fault_injector(&inj);

  std::vector<std::vector<double>> bs, xs;
  for (int j = 0; j < 3; ++j) {
    bs.push_back(random_vec(n, 10 + static_cast<std::uint64_t>(j)));
    xs.emplace_back(static_cast<std::size_t>(n), 0.0);
  }
  for (int j = 0; j < 3; ++j) drv.enqueue(bs[j], xs[j]);

  // The first preconditioner application faults and poisons the parallel
  // plan; the drain must still complete every job correctly through the
  // sequential fallback.
  inj.arm_throw(rt::FaultInjector::kAnyTid, n / 2);
  const solve::BatchReport rep = drv.drain();
  EXPECT_EQ(rep.jobs, 3u);
  EXPECT_EQ(rep.converged, 3u);
  EXPECT_TRUE(rep.degraded_serial);
  EXPECT_GE(drv.preconditioner().serial_fallbacks(), 1u);
  EXPECT_TRUE(drv.preconditioner().degraded());

  // And the driver keeps serving new traffic after the fault.
  auto b2 = random_vec(n, 99);
  std::vector<double> x2(static_cast<std::size_t>(n), 0.0);
  drv.enqueue(b2, x2);
  const solve::BatchReport rep2 = drv.drain();
  EXPECT_EQ(rep2.converged, 1u);
  EXPECT_TRUE(rep2.degraded_serial);
}

TEST(FaultInjection, KrylovBreakdownIsReportedNotSilent) {
  // diag(1, -1): with the exact (ILU0 = LU) preconditioner, CG's very
  // first p·Ap is zero — historically a silent break, now a named one.
  sp::CsrBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -1.0);
  const sp::Csr a = b.build();
  const std::vector<double> rhs = {1.0, 1.0};
  std::vector<double> x(2, 0.0);
  const solve::IdentityPreconditioner ident;
  solve::CgOptions co;
  co.max_iterations = 10;
  const solve::SolveReport cg_rep = solve::pcg(a, rhs, x, ident, co);
  EXPECT_FALSE(cg_rep.converged);
  EXPECT_TRUE(cg_rep.breakdown);
  EXPECT_NE(cg_rep.breakdown_reason.find("denominator"), std::string::npos);

  // BiCGSTAB: a NaN rhs drives rho non-finite on the first iteration.
  const std::vector<double> bad_rhs = {std::nan(""), 1.0};
  std::vector<double> x2(2, 0.0);
  solve::BicgstabOptions bo;
  bo.max_iterations = 10;
  const solve::SolveReport bi_rep =
      solve::bicgstab(a, bad_rhs, x2, ident, bo);
  EXPECT_TRUE(bi_rep.breakdown);
  EXPECT_NE(bi_rep.breakdown_reason.find("rho"), std::string::npos);

  // Forwarded through the driver: the drain counts it and the per-job
  // report carries the reason.
  solve::BatchDriverOptions o;
  o.method = solve::KrylovMethod::kCg;
  o.max_iterations = 10;
  solve::BatchDriver drv(pool(), a, o);
  std::vector<double> x3(2, 0.0);
  drv.enqueue(rhs, x3);
  const solve::BatchReport rep = drv.drain();
  EXPECT_EQ(rep.breakdowns, 1u);
  ASSERT_EQ(rep.reports.size(), 1u);
  EXPECT_TRUE(rep.reports[0].breakdown);
  EXPECT_FALSE(rep.reports[0].breakdown_reason.empty());
}

TEST(FaultInjection, RetryLadderWidensBudgetAndReportsAttempts) {
  // ILU(0) of a 2-D five-point stencil is genuinely incomplete, so CG
  // needs a handful of iterations: a 2-iteration first attempt fails and
  // the widened second attempt (2 * 50) converges.
  const sp::Csr a = gen::five_point(20, 20);
  solve::BatchDriverOptions o;
  o.method = solve::KrylovMethod::kCg;
  o.max_iterations = 2;
  o.max_attempts = 3;
  o.retry_iteration_factor = 50;
  solve::BatchDriver drv(pool(), a, o);
  const auto b = random_vec(a.rows, 7);
  std::vector<double> x(static_cast<std::size_t>(a.rows), 0.0);
  drv.enqueue(b, x);
  const solve::BatchReport rep = drv.drain();
  EXPECT_EQ(rep.converged, 1u);
  EXPECT_EQ(rep.retried, 1u);
  ASSERT_EQ(rep.reports.size(), 1u);
  EXPECT_EQ(rep.reports[0].attempts, 2);
  EXPECT_TRUE(rep.reports[0].converged);
}

TEST(FaultInjection, ValidationNamesOffendingJobRowAndSizes) {
  const index_t n = 16;
  const sp::Csr a = tridiag(n);
  solve::BatchDriverOptions o;
  o.screen_nonfinite = true;
  solve::BatchDriver drv(pool(), a, o);

  // Short b: the message names the job and both sizes.
  std::vector<double> short_b(static_cast<std::size_t>(n - 1), 1.0);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  try {
    drv.enqueue(short_b, x);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("job 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(n - 1)), std::string::npos) << msg;
  }

  // Non-finite rhs entry: the opt-in screen names job and row.
  std::vector<double> bad_b(static_cast<std::size_t>(n), 1.0);
  bad_b[3] = std::nan("");
  try {
    drv.enqueue(bad_b, x);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("job 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("row 3"), std::string::npos) << msg;
  }

  // solve_batch size mismatch: the message carries the actual numbers.
  const sp::IluFactors f = sp::ilu0(a);
  sp::TrisolvePlan plan(pool(), f.l, f.u, sp::PlanOptions{});
  std::vector<double> small(static_cast<std::size_t>(n), 0.0);
  std::vector<double> out(static_cast<std::size_t>(2 * n), 0.0);
  try {
    plan.solve_batch(small, out, /*k=*/2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("size mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(2 * n)), std::string::npos) << msg;
  }
}
