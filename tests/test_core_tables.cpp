// Tests for the iter table and the three ready-table implementations.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/iter_table.hpp"
#include "core/ready_table.hpp"

namespace core = pdx::core;
using pdx::index_t;

TEST(IterTable, StartsPristine) {
  core::IterTable t(100);
  EXPECT_TRUE(t.pristine());
  EXPECT_EQ(t[0], core::kNeverWritten);
  EXPECT_EQ(t[99], core::kNeverWritten);
}

TEST(IterTable, RecordAndClearRoundTrip) {
  core::IterTable t(10);
  t.record(3, 7);
  EXPECT_EQ(t[3], 7);
  EXPECT_FALSE(t.pristine());
  t.clear(3);
  EXPECT_TRUE(t.pristine());
}

TEST(IterTable, RecordAllMatchesManualFill) {
  const std::vector<index_t> writer = {4, 2, 9, 0, 7};
  core::IterTable t(10);
  t.record_all(writer);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t[writer[static_cast<std::size_t>(i)]], i);
  }
  EXPECT_EQ(t[1], core::kNeverWritten);
  t.clear_all(writer);
  EXPECT_TRUE(t.pristine());
}

TEST(IterTable, EnsureSizePreservesContents) {
  core::IterTable t(4);
  t.record(2, 1);
  t.ensure_size(100);
  EXPECT_EQ(t.size(), 100);
  EXPECT_EQ(t[2], 1);
  EXPECT_EQ(t[99], core::kNeverWritten);
}

TEST(IterTable, SentinelComparesGreaterThanAnyIteration) {
  // The executor's "check > 0 means old value" branch relies on this.
  EXPECT_GT(core::kNeverWritten, index_t{1} << 62);
}

TEST(WriterConflict, DetectsDuplicatesAndRangeErrors) {
  using core::find_writer_conflict;
  const std::vector<index_t> ok = {0, 2, 4};
  EXPECT_EQ(find_writer_conflict(ok, 5), -1);
  const std::vector<index_t> dup = {0, 2, 2};
  EXPECT_EQ(find_writer_conflict(dup, 5), 2);
  const std::vector<index_t> oob = {0, 9};
  EXPECT_EQ(find_writer_conflict(oob, 5), 1);
  const std::vector<index_t> neg = {-1};
  EXPECT_EQ(find_writer_conflict(neg, 5), 0);
}

// ---------------------------------------------------------------------
// Ready tables: the same behavioural contract for all three flavours.
// ---------------------------------------------------------------------

template <class Table>
class ReadyTableTyped : public ::testing::Test {};

using ReadyKinds = ::testing::Types<core::DenseReadyTable,
                                    core::PaddedReadyTable,
                                    core::EpochReadyTable>;
TYPED_TEST_SUITE(ReadyTableTyped, ReadyKinds);

TYPED_TEST(ReadyTableTyped, StartsAllNotDone) {
  TypeParam t(64);
  EXPECT_TRUE(t.pristine());
  for (index_t i = 0; i < 64; ++i) EXPECT_FALSE(t.is_done(i));
}

TYPED_TEST(ReadyTableTyped, MarkDoneIsVisible) {
  TypeParam t(16);
  t.begin_epoch();
  t.mark_done(5);
  EXPECT_TRUE(t.is_done(5));
  EXPECT_FALSE(t.is_done(4));
  EXPECT_FALSE(t.is_done(6));
}

TYPED_TEST(ReadyTableTyped, WaitDoneReturnsZeroWhenAlreadyDone) {
  TypeParam t(8);
  t.begin_epoch();
  t.mark_done(3);
  EXPECT_EQ(t.wait_done(3), 0u);
}

TYPED_TEST(ReadyTableTyped, WaitDoneBlocksUntilProducerSignals) {
  TypeParam t(8);
  // rounds > 0 needs the consumer to reach its spin loop before the flag
  // goes up, which no fixed producer delay can guarantee on a loaded
  // one-core machine (the consumer may be scheduled only after mark_done
  // already landed and legitimately observe 0 rounds). So: retry the
  // whole handshake until one attempt provably blocked. Forward progress
  // (wait_done returning at all) is still asserted on every attempt.
  std::uint64_t rounds = 0;
  for (int attempt = 0; attempt < 50 && rounds == 0; ++attempt) {
    t.begin_epoch();
    std::atomic<bool> waiting{false};
    std::thread producer([&] {
      while (!waiting.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1 + attempt));
      t.mark_done(2);
    });
    waiting.store(true, std::memory_order_release);
    rounds = t.wait_done(2);
    producer.join();
    EXPECT_TRUE(t.is_done(2));
  }
  EXPECT_GT(rounds, 0u);
}

TYPED_TEST(ReadyTableTyped, EpochOrClearResetsForReuse) {
  // The engine's inter-loop protocol: begin_epoch at loop start, clear_all
  // (the postprocessing sweep) at loop end. Dense tables reset in the
  // sweep; epoch tables reset in begin_epoch. Either way, each new loop
  // must observe all-NOTDONE.
  TypeParam t(8);
  std::vector<index_t> writer = {1, 3, 5};
  for (int loop = 0; loop < 5; ++loop) {
    t.begin_epoch();
    for (index_t w : writer) {
      EXPECT_FALSE(t.is_done(w)) << "loop " << loop << " offset " << w;
      t.mark_done(w);
    }
    t.clear_all(writer);
  }
  t.begin_epoch();
  EXPECT_TRUE(t.pristine());
}

TYPED_TEST(ReadyTableTyped, EnsureSizeGrows) {
  TypeParam t(4);
  EXPECT_EQ(t.size(), 4);
  t.ensure_size(2);  // never shrinks
  EXPECT_EQ(t.size(), 4);
  t.ensure_size(128);
  EXPECT_EQ(t.size(), 128);
  EXPECT_TRUE(t.pristine());
}

TEST(EpochReadyTable, BeginEpochInvalidatesInConstantTimeSemantics) {
  core::EpochReadyTable t(4);
  t.begin_epoch();
  t.mark_done(0);
  t.mark_done(1);
  EXPECT_TRUE(t.is_done(0));
  t.begin_epoch();  // no per-entry clears
  EXPECT_FALSE(t.is_done(0));
  EXPECT_FALSE(t.is_done(1));
  EXPECT_TRUE(t.pristine());
}

TEST(EpochReadyTable, SurvivesManyEpochs) {
  core::EpochReadyTable t(2);
  for (int i = 0; i < 10000; ++i) {
    t.begin_epoch();
    EXPECT_FALSE(t.is_done(0));
    t.mark_done(0);
    EXPECT_TRUE(t.is_done(0));
  }
}

TEST(EpochReadyTable, StridedSlotsSpreadNeighborsAcrossLines) {
  // The production table stride-hashes slots so neighboring offsets —
  // the rows a triangular-solve wavefront touches concurrently — never
  // share a cache line. Injective map, and consecutive offsets at least
  // one line apart (for any table bigger than a line).
  const index_t n = 1000;
  core::EpochReadyTable t(n);
  std::vector<bool> seen(static_cast<std::size_t>(2 * n + 64), false);
  for (index_t i = 0; i < n; ++i) {
    const index_t s = t.slot_index(i);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, static_cast<index_t>(seen.size()));
    ASSERT_FALSE(seen[static_cast<std::size_t>(s)]) << "slot collision at " << i;
    seen[static_cast<std::size_t>(s)] = true;
  }
  const index_t per_line = core::EpochReadyTable::kFlagsPerLine;
  for (index_t i = 0; i + 1 < n; ++i) {
    const index_t a = t.slot_index(i) / per_line;
    const index_t b = t.slot_index(i + 1) / per_line;
    ASSERT_NE(a, b) << "offsets " << i << " and " << i + 1
                    << " share a cache line";
  }
}

TEST(EpochReadyTable, StridedAndLinearLayoutsAgreeObservably) {
  // Layout is invisible through the public protocol: both variants give
  // the same mark/is_done/pristine answers across epochs.
  core::EpochReadyTable strided(257);
  core::LinearEpochReadyTable linear(257);
  for (int epoch = 0; epoch < 3; ++epoch) {
    strided.begin_epoch();
    linear.begin_epoch();
    for (index_t i = 0; i < 257; i += 1 + epoch) {
      strided.mark_done(i);
      linear.mark_done(i);
    }
    for (index_t i = 0; i < 257; ++i) {
      ASSERT_EQ(strided.is_done(i), linear.is_done(i)) << i;
    }
    EXPECT_EQ(strided.pristine(), linear.pristine());
  }
}
