// Multi-threaded stress test for HashIterTable's concurrency contract
// (hash_iter_table.hpp header comment): concurrent `record` calls with
// injective offsets from N threads, a phase barrier, concurrent read-only
// lookups, then the single-threaded epoch wipe. Runs under the TSan CI
// job, which machine-checks the claimed orderings (CAS slot claims and
// the barrier-fenced plain value stores).
//
// gtest assertions are not used inside parallel regions; threads count
// anomalies into atomics that are asserted after the join.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/hash_iter_table.hpp"
#include "core/iter_table.hpp"
#include "runtime/barrier.hpp"
#include "runtime/schedule.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

}  // namespace

TEST(HashIterTableConcurrent, RecordBarrierLookupAcrossEpochs) {
  const index_t n = 1 << 13;
  core::HashIterTable table(n);
  const unsigned nth = std::min(4u, pool().width());
  rt::Barrier barrier(nth);

  for (int epoch = 0; epoch < 4; ++epoch) {
    // A fresh injective writer map per epoch: offset(i) = i*stride + 1.
    // Misses probe i*stride, which no write ever touches (different
    // residue mod stride).
    const index_t stride = 2 * epoch + 3;
    std::atomic<std::uint64_t> wrong_hits{0}, false_hits{0};

    pool().parallel_region(nth, [&](unsigned tid, unsigned nthreads) {
      // Inspector phase: concurrent inserts, distinct offsets per thread.
      const rt::IterRange mine = rt::static_block_range(n, tid, nthreads);
      for (index_t i = mine.begin; i < mine.end; ++i) {
        table.record(i * stride + 1, i);
      }
      barrier.arrive_and_wait();
      // Executor phase: concurrent read-only lookups over a DIFFERENT
      // thread's range, so every hit crosses a thread boundary.
      const rt::IterRange other =
          rt::static_block_range(n, (tid + 1) % nthreads, nthreads);
      std::uint64_t wrong = 0, phantom = 0;
      for (index_t i = other.begin; i < other.end; ++i) {
        if (table[i * stride + 1] != i) ++wrong;
        if (table[i * stride] != core::kNeverWritten) ++phantom;
      }
      wrong_hits.fetch_add(wrong, std::memory_order_relaxed);
      false_hits.fetch_add(phantom, std::memory_order_relaxed);
    });

    EXPECT_EQ(wrong_hits.load(), 0u) << "epoch " << epoch;
    EXPECT_EQ(false_hits.load(), 0u) << "epoch " << epoch;
    EXPECT_EQ(table.epoch_writes(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(table.overflow_epochs(), 0u)
        << "sized for n writes, so no epoch may overflow";

    // Postprocess phase: single-threaded wipe between parallel regions.
    table.begin_epoch();
    EXPECT_TRUE(table.pristine());
  }
}

TEST(HashIterTableConcurrent, DynamicSelfSchedulingInsertionIsLossless) {
  // Claim order under dynamic self-scheduling is nondeterministic and
  // interleaves the offset space across threads — a harsher CAS-contention
  // pattern than the blocked split above.
  const index_t n = 1 << 14;
  core::HashIterTable table(n);
  for (int round = 0; round < 2; ++round) {
    pool().parallel_for(
        n, 8, [&](index_t i) { table.record(7 * i + 2, i); },
        rt::Schedule::dynamic(16));
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(table[7 * i + 2], i) << "round " << round << " i=" << i;
    }
    EXPECT_EQ(table.epoch_writes(), static_cast<std::uint64_t>(n));
    table.begin_epoch();
    ASSERT_TRUE(table.pristine());
  }
}

TEST(HashIterTableConcurrent, ConcurrentRecordsBumpWriteCounterExactly) {
  // The overflow fix counts inserts as occupied slots at epoch
  // boundaries; under contention every successful insert must claim
  // exactly one slot (duplicate-offset overwrites must not claim more).
  const index_t n = 4096;
  core::HashIterTable table(n);
  pool().parallel_for(n, 8, [&](index_t i) {
    table.record(5 * i + 3, i);
    table.record(5 * i + 3, i);  // duplicate: overwrite, not an insert
  });
  EXPECT_EQ(table.epoch_writes(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(table.overflow_epochs(), 0u);
}
