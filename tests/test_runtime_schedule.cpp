// Tests for the scheduling policies: full coverage, per-thread
// monotonicity (the deadlock-freedom precondition), block layout, and
// chunk handling, swept over policies and thread counts with TEST_P.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "runtime/schedule.hpp"
#include "runtime/thread_pool.hpp"

namespace rt = pdx::rt;
using pdx::index_t;

TEST(StaticBlockRange, PartitionsExactly) {
  for (index_t n : {0, 1, 7, 64, 1000, 10007}) {
    for (unsigned p : {1u, 2u, 3u, 8u, 16u, 61u}) {
      index_t covered = 0;
      index_t prev_end = 0;
      for (unsigned t = 0; t < p; ++t) {
        const rt::IterRange r = rt::static_block_range(n, t, p);
        EXPECT_EQ(r.begin, prev_end) << "gap at t=" << t;
        EXPECT_LE(r.begin, r.end);
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(StaticBlockRange, BalancedWithinOne) {
  const index_t n = 1003;
  const unsigned p = 16;
  index_t lo = n, hi = 0;
  for (unsigned t = 0; t < p; ++t) {
    const auto r = rt::static_block_range(n, t, p);
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1);
}

struct SchedCase {
  rt::Schedule sched;
  unsigned nthreads;
  index_t n;
};

class ScheduleSweep : public ::testing::TestWithParam<SchedCase> {};

TEST_P(ScheduleSweep, CoversEveryIterationExactlyOnce) {
  const SchedCase c = GetParam();
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(c.n));
  for (auto& h : hits) h.store(0);
  std::atomic<index_t> cursor{0};

  rt::ThreadPool pool(c.nthreads);
  pool.parallel_region(c.nthreads, [&](unsigned tid, unsigned nth) {
    rt::schedule_run(c.sched, c.n, tid, nth, &cursor,
                     [&](index_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  });
  for (index_t i = 0; i < c.n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  }
}

TEST_P(ScheduleSweep, PerThreadOrderIsMonotone) {
  const SchedCase c = GetParam();
  std::vector<std::vector<index_t>> seen(c.nthreads);
  std::atomic<index_t> cursor{0};

  rt::ThreadPool pool(c.nthreads);
  pool.parallel_region(c.nthreads, [&](unsigned tid, unsigned nth) {
    rt::schedule_run(c.sched, c.n, tid, nth, &cursor,
                     [&](index_t i) { seen[tid].push_back(i); });
  });
  for (unsigned t = 0; t < c.nthreads; ++t) {
    EXPECT_TRUE(std::is_sorted(seen[t].begin(), seen[t].end()))
        << "thread " << t << " retired iterations out of order";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScheduleSweep,
    ::testing::Values(
        SchedCase{rt::Schedule::static_block(), 1, 100},
        SchedCase{rt::Schedule::static_block(), 4, 1000},
        SchedCase{rt::Schedule::static_block(), 7, 10},  // more threads than fit
        SchedCase{rt::Schedule::static_cyclic(1), 4, 1001},
        SchedCase{rt::Schedule::static_cyclic(8), 4, 1000},
        SchedCase{rt::Schedule::static_cyclic(64), 3, 100},
        SchedCase{rt::Schedule::dynamic(1), 4, 500},
        SchedCase{rt::Schedule::dynamic(16), 8, 4096},
        SchedCase{rt::Schedule::dynamic(0), 6, 2000},   // default chunk
        SchedCase{rt::Schedule::dynamic(1000), 4, 100}  // chunk > n
        ));

TEST(ScheduleToString, NamesArePrintable) {
  EXPECT_EQ(rt::to_string(rt::Schedule::static_block()), "static-block");
  EXPECT_EQ(rt::to_string(rt::Schedule::static_cyclic(4)), "static-cyclic/4");
  EXPECT_EQ(rt::to_string(rt::Schedule::dynamic(8)), "dynamic/8");
}

TEST(DefaultDynamicChunk, ReasonableBounds) {
  EXPECT_GE(rt::default_dynamic_chunk(1, 16), 1);
  EXPECT_EQ(rt::default_dynamic_chunk(0, 4), 1);
  EXPECT_EQ(rt::default_dynamic_chunk(1 << 20, 4), (1 << 20) / 32);
}

TEST(ScheduleRun, CyclicDistributesRoundRobin) {
  // chunk 2, 2 threads, n = 8: t0 -> {0,1,4,5}, t1 -> {2,3,6,7}
  std::vector<std::vector<index_t>> got(2);
  for (unsigned tid = 0; tid < 2; ++tid) {
    rt::schedule_run(rt::Schedule::static_cyclic(2), 8, tid, 2, nullptr,
                     [&](index_t i) { got[tid].push_back(i); });
  }
  EXPECT_EQ(got[0], (std::vector<index_t>{0, 1, 4, 5}));
  EXPECT_EQ(got[1], (std::vector<index_t>{2, 3, 6, 7}));
}
