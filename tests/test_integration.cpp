// End-to-end integration tests: the full §3.2 pipeline (generate matrix ->
// ILU(0) -> doconsider -> parallel triangular solve) on every appendix
// matrix, cross-variant agreement on the §3.1 loop, and stress runs.
#include <gtest/gtest.h>

#include <vector>

#include "core/blocked_doacross.hpp"
#include "core/doacross.hpp"
#include "core/linear_doacross.hpp"
#include "gen/block_operator.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "gen/testloop.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/trisolve.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace core = pdx::core;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

}  // namespace

TEST(Integration, Table1PipelineOnAllFiveMatrices) {
  struct Case {
    const char* name;
    sp::Csr matrix;
  };
  std::vector<Case> cases;
  cases.push_back({"SPE2", gen::matrix_spe2()});
  cases.push_back({"SPE5", gen::matrix_spe5()});
  cases.push_back({"5-PT", gen::matrix_5pt()});
  cases.push_back({"7-PT", gen::matrix_7pt()});
  cases.push_back({"9-PT", gen::matrix_9pt()});

  for (const auto& c : cases) {
    const sp::Csr l = sp::ilu0(c.matrix).l;
    gen::SplitMix64 rng(42);
    std::vector<double> rhs(static_cast<std::size_t>(l.rows));
    for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);

    std::vector<double> y_seq(static_cast<std::size_t>(l.rows));
    sp::trisolve_lower_seq(l, rhs, y_seq);

    // Preprocessed doacross, source order.
    std::vector<double> y_dx(static_cast<std::size_t>(l.rows));
    sp::trisolve_doacross(pool(), l, rhs, y_dx);

    // Preprocessed doacross, doconsider-reordered.
    const core::Reordering r = sp::lower_solve_reordering(l);
    ASSERT_TRUE(core::is_valid_schedule(
        l.rows, r.order, [&l](index_t i, const core::DepVisitor& emit) {
          for (index_t col : l.row_cols(i)) {
            if (col < i) emit(col);
          }
        }))
        << c.name;
    std::vector<double> y_dc(static_cast<std::size_t>(l.rows));
    sp::TrisolveOptions opts;
    opts.order = r.order.data();
    sp::trisolve_doacross(pool(), l, rhs, y_dc, opts);

    // Level-scheduled baseline.
    std::vector<double> y_ls(static_cast<std::size_t>(l.rows));
    sp::trisolve_levelsched(pool(), l, rhs, y_ls, r);

    for (index_t i = 0; i < l.rows; ++i) {
      ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                y_dx[static_cast<std::size_t>(i)])
          << c.name << " doacross row " << i;
      ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                y_dc[static_cast<std::size_t>(i)])
          << c.name << " doconsider row " << i;
      ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                y_ls[static_cast<std::size_t>(i)])
          << c.name << " levelsched row " << i;
    }
  }
}

TEST(Integration, AllDoacrossVariantsAgreeOnFig4Loop) {
  const gen::TestLoop tl = gen::make_test_loop({.n = 4000, .m = 5, .l = 8});
  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);

  // General engine.
  std::vector<double> y_eng = gen::make_initial_y(tl);
  core::DoacrossEngine<double> eng(pool(), tl.value_space);
  eng.run(std::span<const index_t>(tl.a), std::span<double>(y_eng),
          [&tl](auto& it) { gen::test_loop_body(tl, it); });

  // Strip-mined variant.
  std::vector<double> y_blk = gen::make_initial_y(tl);
  core::BlockedDoacross<double> blk(pool(), tl.value_space);
  blk.run(std::span<const index_t>(tl.a), std::span<double>(y_blk),
          [&tl](auto& it) { gen::test_loop_body(tl, it); }, 512);

  // Linear-subscript variant.
  std::vector<double> y_lin = gen::make_initial_y(tl);
  core::LinearDoacross<double> lin(pool());
  lin.run({.c = 2, .d = tl.base, .n = tl.params.n}, std::span<double>(y_lin),
          [&tl](auto& it) { gen::test_loop_body(tl, it); });

  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_EQ(y_ref[i], y_eng[i]) << "engine offset " << i;
    ASSERT_EQ(y_ref[i], y_blk[i]) << "blocked offset " << i;
    ASSERT_EQ(y_ref[i], y_lin[i]) << "linear offset " << i;
  }
}

TEST(Integration, ReusedEngineAcrossHeterogeneousLoops) {
  // One engine instance services loops of different shapes back to back —
  // the arena-reuse scenario of paper §2.1 (multiple doacross loops per
  // program).
  core::DoacrossEngine<double> eng(pool(), 1);

  for (int l : {2, 5, 8}) {
    for (index_t n : {100, 1000, 3000}) {
      const gen::TestLoop tl =
          gen::make_test_loop({.n = n, .m = 3, .l = l},
                              static_cast<std::uint64_t>(n + l));
      eng.reserve(tl.value_space);

      std::vector<double> y_ref = gen::make_initial_y(tl);
      gen::run_test_loop_seq(tl, y_ref);
      std::vector<double> y_par = gen::make_initial_y(tl);
      eng.run(std::span<const index_t>(tl.a), std::span<double>(y_par),
              [&tl](auto& it) { gen::test_loop_body(tl, it); });
      for (std::size_t i = 0; i < y_ref.size(); ++i) {
        ASSERT_EQ(y_ref[i], y_par[i]) << "n=" << n << " l=" << l;
      }
      ASSERT_TRUE(eng.iter_table().pristine());
    }
  }
}

TEST(Integration, StressManyThreadsSmallLoops) {
  // Oversubscription and tiny loops: exercises the spin-wait escalation
  // and the degenerate schedule paths.
  rt::ThreadPool wide(16);
  for (index_t n : {1, 2, 3, 5, 17}) {
    std::vector<index_t> writer(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) writer[static_cast<std::size_t>(i)] = i;
    std::vector<double> y(static_cast<std::size_t>(n), 1.0);
    core::DoacrossEngine<double> eng(wide, n);
    eng.run(writer, std::span<double>(y), [](auto& it) {
      const index_t i = it.index();
      if (i > 0) it.lhs() += it.read(i - 1);
    });
    // y[i] = i+1 (prefix sums of ones).
    for (index_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                       static_cast<double>(i + 1))
          << "n=" << n;
    }
  }
}

TEST(Integration, RepeatedStressIsRaceFreeUnderTsanStyleLoad) {
  // Hammer the same engine with a dependence-dense loop many times; any
  // flag/ordering bug shows up as a value mismatch.
  const gen::TestLoop tl = gen::make_test_loop({.n = 2000, .m = 5, .l = 4});
  std::vector<double> y_ref = gen::make_initial_y(tl);
  gen::run_test_loop_seq(tl, y_ref);

  core::DoacrossEngine<double> eng(pool(), tl.value_space);
  core::DoacrossOptions opts;
  opts.schedule = rt::Schedule::dynamic(4);
  for (int rep = 0; rep < 25; ++rep) {
    std::vector<double> y = gen::make_initial_y(tl);
    eng.run(std::span<const index_t>(tl.a), std::span<double>(y),
            [&tl](auto& it) { gen::test_loop_body(tl, it); }, opts);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y[i]) << "rep " << rep;
    }
  }
}
