// Tests for TrisolvePlan: repeated solves across epochs stay bitwise
// identical to the sequential Fig. 7 loops under every schedule and
// thread count, the fused L+U application costs exactly one pool
// fork/join, and the O(1) epoch reset really replaces the flag sweep.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/cg.hpp"
#include "solve/precond.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/trisolve.hpp"
#include "sparse/trisolve_plan.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

std::vector<double> random_rhs(index_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
  return rhs;
}

}  // namespace

TEST(TrisolvePlan, RepeatedLowerSolvesBitwiseAcrossEpochs) {
  const sp::Csr l = sp::ilu0(gen::five_point(18, 18)).l;

  // Thread counts {1, 2, hardware-width pool}; static and dynamic
  // schedules; reordered and source order. Every combination must stay
  // bitwise equal to the sequential solve on every reuse epoch.
  for (unsigned nth : {1u, 2u, 0u}) {
    for (bool reorder : {false, true}) {
      for (const auto& sched :
           {rt::Schedule::static_block(), rt::Schedule::dynamic(8)}) {
        sp::PlanOptions opts;
        opts.nthreads = nth;
        opts.schedule = sched;
        opts.reorder = reorder;
        sp::TrisolvePlan plan(pool(), l, opts);
        for (int epoch = 0; epoch < 4; ++epoch) {
          const auto rhs = random_rhs(l.rows, 100 + epoch);
          std::vector<double> y_seq(static_cast<std::size_t>(l.rows));
          sp::trisolve_lower_seq(l, rhs, y_seq);
          std::vector<double> y(static_cast<std::size_t>(l.rows));
          plan.solve_lower(rhs, y);
          for (index_t i = 0; i < l.rows; ++i) {
            ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                      y[static_cast<std::size_t>(i)])
                << "nth=" << nth << " reorder=" << reorder << " "
                << rt::to_string(sched) << " epoch " << epoch << " row " << i;
          }
        }
      }
    }
  }
}

TEST(TrisolvePlan, FusedSolveBitwiseAcrossEpochs) {
  const sp::IluFactors f = sp::ilu0(gen::seven_point(7, 7, 7));

  for (unsigned nth : {1u, 2u, 0u}) {
    for (const auto& sched :
         {rt::Schedule::static_block(), rt::Schedule::dynamic(8)}) {
      sp::PlanOptions opts;
      opts.nthreads = nth;
      opts.schedule = sched;
      sp::TrisolvePlan plan(pool(), f.l, f.u, opts);
      for (int epoch = 0; epoch < 4; ++epoch) {
        const auto rhs = random_rhs(f.l.rows, 200 + epoch);
        std::vector<double> t(static_cast<std::size_t>(f.l.rows)),
            z_seq(static_cast<std::size_t>(f.l.rows));
        sp::trisolve_lower_seq(f.l, rhs, t);
        sp::trisolve_upper_seq(f.u, t, z_seq);

        std::vector<double> z(static_cast<std::size_t>(f.l.rows));
        plan.solve(rhs, z);
        for (index_t i = 0; i < f.l.rows; ++i) {
          ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
                    z[static_cast<std::size_t>(i)])
              << "nth=" << nth << " " << rt::to_string(sched) << " epoch "
              << epoch << " row " << i;
        }
      }
    }
  }
}

TEST(TrisolvePlan, UpperSolveBitwiseAcrossEpochs) {
  const sp::IluFactors f = sp::ilu0(gen::nine_point(14, 14));
  sp::TrisolvePlan plan(pool(), f.l, f.u, {});
  for (int epoch = 0; epoch < 3; ++epoch) {
    const auto rhs = random_rhs(f.u.rows, 300 + epoch);
    std::vector<double> z_seq(static_cast<std::size_t>(f.u.rows));
    sp::trisolve_upper_seq(f.u, rhs, z_seq);
    std::vector<double> z(static_cast<std::size_t>(f.u.rows));
    plan.solve_upper(rhs, z);
    for (index_t i = 0; i < f.u.rows; ++i) {
      ASSERT_EQ(z_seq[static_cast<std::size_t>(i)],
                z[static_cast<std::size_t>(i)])
          << "epoch " << epoch << " row " << i;
    }
  }
}

TEST(TrisolvePlan, FusedApplicationCostsExactlyOneDispatch) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(12, 12));
  sp::TrisolvePlan plan(pool(), f.l, f.u, {});
  const auto rhs = random_rhs(f.l.rows, 42);
  std::vector<double> z(static_cast<std::size_t>(f.l.rows));

  const std::uint64_t before = pool().dispatch_count();
  plan.solve(rhs, z);
  EXPECT_EQ(pool().dispatch_count() - before, 1u)
      << "fused L+U must be one pool fork/join";

  // Ten more applications: still one dispatch each.
  const std::uint64_t before10 = pool().dispatch_count();
  for (int rep = 0; rep < 10; ++rep) plan.solve(rhs, z);
  EXPECT_EQ(pool().dispatch_count() - before10, 10u);
}

TEST(TrisolvePlan, PreconditionerApplyCostsExactlyOneDispatch) {
  const sp::Csr a = gen::five_point(12, 12);
  const solve::DoacrossIlu0Preconditioner m(pool(), a);
  const auto r = random_rhs(a.rows, 43);
  std::vector<double> z(static_cast<std::size_t>(a.rows));

  const std::uint64_t before = pool().dispatch_count();
  m.apply(r, z);
  EXPECT_EQ(pool().dispatch_count() - before, 1u);
}

TEST(TrisolvePlan, EpochResetIsCounterBumpNotSweep) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(10, 10));
  sp::TrisolvePlan plan(pool(), f.l, f.u, {});
  const auto rhs = random_rhs(f.l.rows, 44);
  std::vector<double> z(static_cast<std::size_t>(f.l.rows));

  const std::uint32_t e0 = plan.lower_epoch();
  for (int rep = 0; rep < 3; ++rep) plan.solve(rhs, z);
  EXPECT_EQ(plan.lower_epoch(), e0 + 3) << "one epoch bump per solve";
  EXPECT_EQ(plan.solves(), 3u);
}

TEST(TrisolvePlan, PlanInsidePcgMatchesSequentialPath) {
  // The preconditioner holds the plan across all Krylov iterations; the
  // iteration path must coincide exactly with the sequential ILU(0).
  const sp::Csr a = gen::five_point(25, 25);
  gen::SplitMix64 rng(45);
  std::vector<double> b(static_cast<std::size_t>(a.rows));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);

  std::vector<double> x_seq(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_seq = solve::pcg(a, b, x_seq, solve::Ilu0Preconditioner{a});
  std::vector<double> x_par(static_cast<std::size_t>(a.rows), 0.0);
  const auto rep_par =
      solve::pcg(a, b, x_par, solve::DoacrossIlu0Preconditioner{pool(), a});

  EXPECT_TRUE(rep_seq.converged);
  EXPECT_TRUE(rep_par.converged);
  EXPECT_EQ(rep_seq.iterations, rep_par.iterations);
  for (std::size_t i = 0; i < x_seq.size(); ++i) {
    ASSERT_EQ(x_seq[i], x_par[i]) << i;
  }
}

TEST(TrisolvePlan, RejectsBadArgumentsAndLowerOnlyMisuse) {
  const sp::IluFactors f = sp::ilu0(gen::five_point(6, 6));
  sp::TrisolvePlan lower_only(pool(), f.l, sp::PlanOptions{});
  std::vector<double> rhs(static_cast<std::size_t>(f.l.rows)), z = rhs;
  EXPECT_THROW(lower_only.solve(rhs, z), std::logic_error);
  EXPECT_THROW(lower_only.solve_upper(rhs, z), std::logic_error);

  sp::TrisolvePlan plan(pool(), f.l, f.u, {});
  std::vector<double> small(3);
  EXPECT_THROW(plan.solve(small, z), std::invalid_argument);
  EXPECT_THROW(plan.solve_lower(rhs, small), std::invalid_argument);
}

TEST(TrisolvePlan, WorkRepsMatchesSequentialKnob) {
  const sp::Csr l = sp::ilu0(gen::five_point(9, 9)).l;
  const int work = 13;
  sp::PlanOptions opts;
  opts.work_reps = work;
  sp::TrisolvePlan plan(pool(), l, opts);
  const auto rhs = random_rhs(l.rows, 46);
  std::vector<double> y_seq(static_cast<std::size_t>(l.rows)),
      y(static_cast<std::size_t>(l.rows));
  sp::trisolve_lower_seq(l, rhs, y_seq, work);
  plan.solve_lower(rhs, y);
  for (index_t i = 0; i < l.rows; ++i) {
    ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
              y[static_cast<std::size_t>(i)]);
  }
}
