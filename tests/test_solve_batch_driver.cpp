// Tests for solve::BatchDriver: a queue of mixed easy / ill-conditioned
// systems drains through the shared DoacrossIlu0Preconditioner plan, every
// solution meets the same residual tolerance as the single-solve path, and
// the results are bitwise identical to running each system alone. Also
// covers the batched admission screen and queue reuse.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/block_operator.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "solve/batch_driver.hpp"
#include "solve/bicgstab.hpp"
#include "solve/cg.hpp"
#include "solve/precond.hpp"
#include "solve/vec.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmv.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace solve = pdx::solve;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

/// Anisotropic 2-D operator: strong coupling along x, eps-weak along y.
/// SPD (boundary rows strictly dominant) but ill-conditioned for small
/// eps — the hard half of the mixed queue.
sp::Csr anisotropic_five_point(index_t nx, index_t ny, double eps) {
  sp::CsrBuilder b(nx * ny, nx * ny);
  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nx; ++ix) {
      const index_t i = iy * nx + ix;
      b.add(i, i, 2.0 + 2.0 * eps);
      if (ix > 0) b.add(i, i - 1, -1.0);
      if (ix < nx - 1) b.add(i, i + 1, -1.0);
      if (iy > 0) b.add(i, i - nx, -eps);
      if (iy < ny - 1) b.add(i, i + nx, -eps);
    }
  }
  return b.build();
}

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& e : v) e = rng.next_double(-1.0, 1.0);
  return v;
}

double relative_residual(const sp::Csr& a, std::span<const double> b,
                         std::span<const double> x) {
  std::vector<double> r(static_cast<std::size_t>(a.rows));
  sp::spmv(a, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  const double bnorm = solve::norm2(b);
  return solve::norm2(r) / (bnorm > 0.0 ? bnorm : 1.0);
}

}  // namespace

TEST(BatchDriver, MixedQueueMeetsToleranceAndMatchesSingleSolvePath) {
  // Ill-conditioned matrix, mixed right-hand sides: a smooth "easy" one, a
  // rough random one, the all-zero system, and a pre-solved guess.
  const sp::Csr a = anisotropic_five_point(16, 16, 1e-3);
  const index_t n = a.rows;
  const double tol = 1e-10;

  std::vector<double> x_true(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b_easy(static_cast<std::size_t>(n));
  sp::spmv(a, x_true, b_easy);                      // smooth solution
  const auto b_hard = random_vec(n, 21);            // rough rhs
  std::vector<double> b_zero(static_cast<std::size_t>(n), 0.0);

  solve::BatchDriverOptions opts;
  opts.max_iterations = 5000;
  opts.rel_tolerance = tol;
  // Calibration off: the dispatch-per-application accounting below
  // assumes one fixed parallel strategy across the whole drain.
  opts.calibration_epochs = 0;
  solve::BatchDriver driver(pool(), a, opts);

  std::vector<double> x0(static_cast<std::size_t>(n), 0.0);
  std::vector<double> x1(static_cast<std::size_t>(n), 0.0);
  std::vector<double> x2(static_cast<std::size_t>(n), 0.0);
  std::vector<double> x3 = x_true;  // exact guess: screened, untouched
  driver.enqueue(b_easy, x0);
  driver.enqueue(b_hard, x1);
  driver.enqueue(b_zero, x2);
  driver.enqueue(b_easy, x3);
  EXPECT_EQ(driver.pending(), 4u);

  const auto rep = driver.drain();
  EXPECT_EQ(rep.jobs, 4u);
  ASSERT_EQ(rep.reports.size(), 4u);
  EXPECT_EQ(rep.converged, 4u);
  EXPECT_EQ(rep.screened, 2u) << "zero system and exact guess";
  EXPECT_EQ(rep.reports[2].iterations, 0);
  EXPECT_EQ(rep.reports[3].iterations, 0);
  EXPECT_GT(rep.total_iterations, 0u);
  EXPECT_GT(rep.precond_solves, 0u);
  EXPECT_GT(rep.pool_dispatches, rep.precond_solves)
      << "screen + one dispatch per preconditioner application";

  // Every solution meets the drain tolerance, re-verified from scratch.
  EXPECT_LE(relative_residual(a, b_easy, x0), tol);
  EXPECT_LE(relative_residual(a, b_hard, x1), tol);
  EXPECT_LE(relative_residual(a, b_easy, x3), tol);
  for (double v : x2) EXPECT_EQ(v, 0.0) << "zero system: x untouched";
  for (std::size_t i = 0; i < x3.size(); ++i) {
    EXPECT_EQ(x3[i], x_true[i]) << "screened job must not touch x";
  }

  // Bitwise identity with the single-solve path: same systems, one at a
  // time, through their own DoacrossIlu0Preconditioner.
  const solve::DoacrossIlu0Preconditioner m(pool(), a);
  solve::CgOptions copts;
  copts.max_iterations = opts.max_iterations;
  copts.rel_tolerance = tol;
  std::vector<double> y0(static_cast<std::size_t>(n), 0.0);
  std::vector<double> y1(static_cast<std::size_t>(n), 0.0);
  const auto rep0 = solve::pcg(a, b_easy, y0, m, copts);
  const auto rep1 = solve::pcg(a, b_hard, y1, m, copts);
  EXPECT_EQ(rep.reports[0].iterations, rep0.iterations);
  EXPECT_EQ(rep.reports[1].iterations, rep1.iterations);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(x0[static_cast<std::size_t>(i)],
              y0[static_cast<std::size_t>(i)])
        << i;
    ASSERT_EQ(x1[static_cast<std::size_t>(i)],
              y1[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(BatchDriver, BicgstabDrainOnNonsymmetricMatchesSingleSolves) {
  const sp::Csr a = gen::block_seven_point(
      {.nx = 4, .ny = 3, .nz = 2, .block = 3, .seed = 13});
  const index_t n = a.rows;
  const double tol = 1e-9;

  solve::BatchDriverOptions opts;
  opts.method = solve::KrylovMethod::kBicgstab;
  opts.max_iterations = 2000;
  opts.rel_tolerance = tol;
  solve::BatchDriver driver(pool(), a, opts);

  const int jobs = 5;
  std::vector<std::vector<double>> b(jobs), x(jobs);
  for (int j = 0; j < jobs; ++j) {
    b[static_cast<std::size_t>(j)] =
        random_vec(n, 50 + static_cast<std::uint64_t>(j));
    x[static_cast<std::size_t>(j)].assign(static_cast<std::size_t>(n), 0.0);
    driver.enqueue(b[static_cast<std::size_t>(j)],
                   x[static_cast<std::size_t>(j)]);
  }
  const auto rep = driver.drain();
  EXPECT_EQ(rep.converged, static_cast<std::size_t>(jobs));

  const solve::DoacrossIlu0Preconditioner m(pool(), a);
  solve::BicgstabOptions bopts;
  bopts.max_iterations = opts.max_iterations;
  bopts.rel_tolerance = tol;
  for (int j = 0; j < jobs; ++j) {
    EXPECT_LE(relative_residual(a, b[static_cast<std::size_t>(j)],
                                x[static_cast<std::size_t>(j)]),
              tol)
        << "job " << j;
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    const auto single =
        solve::bicgstab(a, b[static_cast<std::size_t>(j)], y, m, bopts);
    EXPECT_EQ(rep.reports[static_cast<std::size_t>(j)].iterations,
              single.iterations)
        << "job " << j;
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(x[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)],
                y[static_cast<std::size_t>(i)])
          << "job " << j << " row " << i;
    }
  }
}

TEST(BatchDriver, SecondDrainScreensAlreadySolvedSystems) {
  const sp::Csr a = gen::five_point(12, 12);
  const index_t n = a.rows;
  solve::BatchDriver driver(pool(), a, {});

  const auto b0 = random_vec(n, 71);
  const auto b1 = random_vec(n, 72);
  std::vector<double> x0(static_cast<std::size_t>(n), 0.0),
      x1(static_cast<std::size_t>(n), 0.0);
  driver.enqueue(b0, x0);
  driver.enqueue(b1, x1);
  const auto first = driver.drain();
  EXPECT_EQ(first.converged, 2u);
  EXPECT_EQ(driver.pending(), 0u);

  // Re-enqueue the solved (b, x) pairs: the batched screen answers both
  // with zero Krylov work — exactly one dispatch (the SpMV pass) total.
  driver.enqueue(b0, x0);
  driver.enqueue(b1, x1);
  const auto second = driver.drain();
  EXPECT_EQ(second.jobs, 2u);
  EXPECT_EQ(second.screened, 2u);
  EXPECT_EQ(second.converged, 2u);
  EXPECT_EQ(second.total_iterations, 0u);
  EXPECT_EQ(second.precond_solves, 0u);
  EXPECT_EQ(second.pool_dispatches, 1u);
}

TEST(BatchDriver, EmptyDrainAndGuards) {
  const sp::Csr a = gen::five_point(6, 6);
  solve::BatchDriver driver(pool(), a, {});
  const rt::DispatchProbe probe(pool());
  const auto rep = driver.drain();
  EXPECT_EQ(rep.jobs, 0u);
  EXPECT_EQ(rep.pool_dispatches, 0u);
  EXPECT_EQ(probe.delta(), 0u);

  std::vector<double> small(3), x(static_cast<std::size_t>(a.rows));
  EXPECT_THROW(driver.enqueue(small, x), std::invalid_argument);
  solve::BatchDriverOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(solve::BatchDriver(pool(), a, bad), std::invalid_argument);
}
