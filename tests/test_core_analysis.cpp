// Tests for the dependence analysis and list-scheduling predictor.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/analysis.hpp"
#include "core/doconsider.hpp"
#include "gen/testloop.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
using pdx::index_t;

namespace {

core::DepGraph graph_from_lists(std::vector<std::vector<index_t>> deps) {
  core::DepGraph g;
  g.ptr.push_back(0);
  for (const auto& d : deps) {
    for (index_t j : d) g.adj.push_back(j);
    g.ptr.push_back(static_cast<index_t>(g.adj.size()));
  }
  return g;
}

std::vector<index_t> identity_order(index_t n) {
  std::vector<index_t> o(static_cast<std::size_t>(n));
  std::iota(o.begin(), o.end(), index_t{0});
  return o;
}

}  // namespace

TEST(DistanceHistogram, EmptyGraph) {
  const core::DepGraph g = graph_from_lists({{}, {}, {}});
  const auto h = core::dependence_distance_histogram(g);
  EXPECT_EQ(h.total, 0);
  EXPECT_EQ(h.min_distance, 0);
  EXPECT_EQ(h.max_distance, 0);
  EXPECT_DOUBLE_EQ(h.mean_distance, 0.0);
}

TEST(DistanceHistogram, CountsDistances) {
  // deps: 1->0 (d=1), 2->0 (d=2), 3->2 (d=1)
  const core::DepGraph g = graph_from_lists({{}, {0}, {0}, {2}});
  const auto h = core::dependence_distance_histogram(g, 8);
  EXPECT_EQ(h.total, 3);
  EXPECT_EQ(h.count[1], 2);
  EXPECT_EQ(h.count[2], 1);
  EXPECT_EQ(h.min_distance, 1);
  EXPECT_EQ(h.max_distance, 2);
  EXPECT_NEAR(h.mean_distance, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(h.overflow, 0);
}

TEST(DistanceHistogram, OverflowBucket) {
  const core::DepGraph g = graph_from_lists({{}, {}, {}, {}, {}, {0}});
  const auto h = core::dependence_distance_histogram(g, 3);
  EXPECT_EQ(h.overflow, 1);
  EXPECT_EQ(h.max_distance, 5);
}

TEST(DistanceHistogram, TestLoopMatchesTheory) {
  // Even L: distances are exactly {L/2 - j : j = 1..min(M, L/2-1)}.
  const gen::TestLoop tl = gen::make_test_loop({.n = 300, .m = 5, .l = 10});
  const auto h =
      core::dependence_distance_histogram(gen::test_loop_deps(tl), 16);
  EXPECT_EQ(h.min_distance, 1);
  EXPECT_EQ(h.max_distance, 4);  // L/2 - 1
  for (index_t d = 1; d <= 4; ++d) {
    EXPECT_GT(h.count[static_cast<std::size_t>(d)], 250) << d;
  }
  EXPECT_EQ(h.count[5], 0);
}

TEST(ListSchedule, IndependentWorkScalesPerfectly) {
  const core::DepGraph g = graph_from_lists(
      std::vector<std::vector<index_t>>(12, std::vector<index_t>{}));
  const auto est =
      core::simulate_list_schedule(g, identity_order(12), 4);
  EXPECT_DOUBLE_EQ(est.total_work, 12.0);
  EXPECT_DOUBLE_EQ(est.makespan, 3.0);
  EXPECT_DOUBLE_EQ(est.predicted_efficiency(4), 1.0);
  EXPECT_DOUBLE_EQ(est.critical_path, 1.0);
}

TEST(ListSchedule, SerialChainIsCriticalPathBound) {
  std::vector<std::vector<index_t>> deps(10);
  for (index_t i = 1; i < 10; ++i) deps[static_cast<std::size_t>(i)] = {i - 1};
  const core::DepGraph g = graph_from_lists(std::move(deps));
  const auto est = core::simulate_list_schedule(g, identity_order(10), 8);
  EXPECT_DOUBLE_EQ(est.makespan, 10.0);  // fully serial
  EXPECT_DOUBLE_EQ(est.critical_path, 10.0);
  EXPECT_NEAR(est.predicted_efficiency(8), 10.0 / 80.0, 1e-12);
}

TEST(ListSchedule, NonUniformCostsRespected) {
  // Two independent tasks, costs 3 and 1, one processor: makespan 4.
  const core::DepGraph g = graph_from_lists({{}, {}});
  const std::vector<double> cost = {3.0, 1.0};
  const auto est =
      core::simulate_list_schedule(g, identity_order(2), 1, cost);
  EXPECT_DOUBLE_EQ(est.makespan, 4.0);
  EXPECT_DOUBLE_EQ(est.total_work, 4.0);
}

TEST(ListSchedule, BetterOrderGivesShorterMakespan) {
  // Three chains of length 4, interleaved badly in source order.
  const index_t n = 12, stride = 3;
  std::vector<std::vector<index_t>> deps(static_cast<std::size_t>(n));
  for (index_t i = stride; i < n; ++i) {
    deps[static_cast<std::size_t>(i)] = {i - stride};
  }
  const core::DepGraph g = graph_from_lists(std::move(deps));
  const core::Reordering r = core::doconsider_order(g);

  const auto src = core::simulate_list_schedule(g, identity_order(n), 3);
  const auto ord = core::simulate_list_schedule(g, r.order, 3);
  EXPECT_LE(ord.makespan, src.makespan);
  // Level order achieves the critical-path bound here.
  EXPECT_DOUBLE_EQ(ord.makespan, 4.0);
}

TEST(ListSchedule, RejectsBadArguments) {
  const core::DepGraph g = graph_from_lists({{}, {}});
  EXPECT_THROW(core::simulate_list_schedule(g, identity_order(3), 2),
               std::invalid_argument);
  EXPECT_THROW(core::simulate_list_schedule(g, identity_order(2), 0),
               std::invalid_argument);
  const std::vector<double> bad_cost = {1.0};
  EXPECT_THROW(
      core::simulate_list_schedule(g, identity_order(2), 2, bad_cost),
      std::invalid_argument);
}
