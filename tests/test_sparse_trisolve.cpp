// Tests for triangular solves: sequential vs dense reference, and all
// parallel executors (doacross, doacross+doconsider, level-scheduled)
// bitwise against the sequential Fig. 7 loop.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/block_operator.hpp"
#include "gen/rng.hpp"
#include "gen/stencil.hpp"
#include "runtime/thread_pool.hpp"
#include "sparse/dense.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/levels.hpp"
#include "sparse/par_trisolve.hpp"
#include "sparse/spmv.hpp"
#include "sparse/trisolve.hpp"

namespace sp = pdx::sparse;
namespace gen = pdx::gen;
namespace core = pdx::core;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

std::vector<double> random_rhs(index_t n, std::uint64_t seed) {
  gen::SplitMix64 rng(seed);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);
  return rhs;
}

}  // namespace

TEST(TrisolveSeq, LowerMatchesDenseReference) {
  const sp::Csr a = gen::five_point(6, 6);
  const sp::IluFactors f = sp::ilu0(a);
  const auto rhs = random_rhs(a.rows, 1);
  std::vector<double> y(static_cast<std::size_t>(a.rows));
  sp::trisolve_lower_seq(f.l, rhs, y);

  const auto want = sp::Dense::from_csr(f.l).lower_solve(rhs);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(TrisolveSeq, UpperMatchesDenseReference) {
  const sp::Csr a = gen::five_point(6, 6);
  const sp::IluFactors f = sp::ilu0(a);
  const auto rhs = random_rhs(a.rows, 2);
  std::vector<double> y(static_cast<std::size_t>(a.rows));
  sp::trisolve_upper_seq(f.u, rhs, y);

  const auto want = sp::Dense::from_csr(f.u).upper_solve(rhs);
  for (index_t i = 0; i < a.rows; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(TrisolveSeq, LUSolveRecoversOriginalSolution) {
  // Solve A x = b through the complete LU of a dense-pattern matrix.
  sp::CsrBuilder b(4, 4);
  const double vals[4][4] = {
      {10, 1, 2, 0.5}, {1, 9, 0.5, 1}, {2, 0.5, 8, 1}, {0.5, 1, 1, 7}};
  for (index_t r = 0; r < 4; ++r) {
    for (index_t c = 0; c < 4; ++c) b.add(r, c, vals[r][c]);
  }
  const sp::Csr a = b.build();
  const sp::IluFactors f = sp::ilu0(a);  // complete LU here
  const std::vector<double> x_true = {1.0, -2.0, 3.0, -4.0};
  std::vector<double> rhs(4);
  sp::spmv_parallel(pool(), a, x_true, rhs, 1);

  std::vector<double> t(4), x(4);
  sp::trisolve_lower_seq(f.l, rhs, t);
  sp::trisolve_upper_seq(f.u, t, x);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-10);
  }
}

struct TrisolveCase {
  const char* name;
  sp::Csr (*make)();
};

namespace matrices {
sp::Csr spe2() { return gen::matrix_spe2(); }
sp::Csr spe5() { return gen::matrix_spe5(); }
sp::Csr p5() { return gen::five_point(20, 20); }
sp::Csr p7() { return gen::seven_point(8, 8, 8); }
sp::Csr p9() { return gen::nine_point(20, 20); }
}  // namespace matrices

class ParTrisolveSweep : public ::testing::TestWithParam<TrisolveCase> {};

TEST_P(ParTrisolveSweep, DoacrossMatchesSequentialBitwise) {
  const sp::Csr a = GetParam().make();
  const sp::Csr l = sp::ilu0(a).l;
  const auto rhs = random_rhs(l.rows, 3);

  std::vector<double> y_seq(static_cast<std::size_t>(l.rows));
  sp::trisolve_lower_seq(l, rhs, y_seq);

  for (const auto& sched :
       {rt::Schedule::static_block(), rt::Schedule::static_cyclic(1),
        rt::Schedule::dynamic(8)}) {
    std::vector<double> y_par(static_cast<std::size_t>(l.rows));
    sp::TrisolveOptions opts;
    opts.schedule = sched;
    sp::trisolve_doacross(pool(), l, rhs, y_par, opts);
    for (index_t i = 0; i < l.rows; ++i) {
      ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                y_par[static_cast<std::size_t>(i)])
          << GetParam().name << " " << rt::to_string(sched) << " row " << i;
    }
  }
}

TEST_P(ParTrisolveSweep, DoconsiderOrderMatchesSequentialBitwise) {
  const sp::Csr a = GetParam().make();
  const sp::Csr l = sp::ilu0(a).l;
  const auto rhs = random_rhs(l.rows, 4);

  std::vector<double> y_seq(static_cast<std::size_t>(l.rows));
  sp::trisolve_lower_seq(l, rhs, y_seq);

  const core::Reordering r = sp::lower_solve_reordering(l);
  std::vector<double> y_ord(static_cast<std::size_t>(l.rows));
  sp::TrisolveOptions opts;
  opts.order = r.order.data();
  sp::trisolve_doacross(pool(), l, rhs, y_ord, opts);
  for (index_t i = 0; i < l.rows; ++i) {
    ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
              y_ord[static_cast<std::size_t>(i)])
        << GetParam().name << " row " << i;
  }
}

TEST_P(ParTrisolveSweep, LevelScheduledMatchesSequentialBitwise) {
  const sp::Csr a = GetParam().make();
  const sp::Csr l = sp::ilu0(a).l;
  const auto rhs = random_rhs(l.rows, 5);

  std::vector<double> y_seq(static_cast<std::size_t>(l.rows));
  sp::trisolve_lower_seq(l, rhs, y_seq);

  const core::Reordering r = sp::lower_solve_reordering(l);
  std::vector<double> y_lvl(static_cast<std::size_t>(l.rows));
  sp::trisolve_levelsched(pool(), l, rhs, y_lvl, r);
  for (index_t i = 0; i < l.rows; ++i) {
    ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
              y_lvl[static_cast<std::size_t>(i)])
        << GetParam().name << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperMatrices, ParTrisolveSweep,
    ::testing::Values(TrisolveCase{"SPE2", matrices::spe2},
                      TrisolveCase{"SPE5", matrices::spe5},
                      TrisolveCase{"5-PT", matrices::p5},
                      TrisolveCase{"7-PT", matrices::p7},
                      TrisolveCase{"9-PT", matrices::p9}),
    [](const ::testing::TestParamInfo<TrisolveCase>& pinfo) {
      std::string n = pinfo.param.name;
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(ParTrisolve, ReusedReadyTableStaysConsistent) {
  const sp::Csr l = sp::ilu0(gen::five_point(15, 15)).l;
  core::DenseReadyTable ready(l.rows);
  const auto rhs = random_rhs(l.rows, 6);
  std::vector<double> y_seq(static_cast<std::size_t>(l.rows));
  sp::trisolve_lower_seq(l, rhs, y_seq);

  for (int rep = 0; rep < 5; ++rep) {
    std::vector<double> y(static_cast<std::size_t>(l.rows));
    sp::trisolve_doacross(pool(), l, rhs, y, ready, {});
    ASSERT_TRUE(ready.pristine()) << "rep " << rep;
    for (index_t i = 0; i < l.rows; ++i) {
      ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                y[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(MultiRhsTrisolve, EachColumnMatchesSingleSolveBitwise) {
  const sp::Csr l = sp::ilu0(gen::five_point(12, 12)).l;
  const index_t n = l.rows, nrhs = 5;
  gen::SplitMix64 rng(21);
  std::vector<double> rhs(static_cast<std::size_t>(n * nrhs));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);

  std::vector<double> y_multi(static_cast<std::size_t>(n * nrhs));
  sp::trisolve_lower_seq_multi(l, rhs, y_multi, nrhs);

  for (index_t r = 0; r < nrhs; ++r) {
    std::vector<double> rhs1(static_cast<std::size_t>(n)),
        y1(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      rhs1[static_cast<std::size_t>(i)] =
          rhs[static_cast<std::size_t>(i * nrhs + r)];
    }
    sp::trisolve_lower_seq(l, rhs1, y1);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(y1[static_cast<std::size_t>(i)],
                y_multi[static_cast<std::size_t>(i * nrhs + r)])
          << "rhs " << r << " row " << i;
    }
  }
}

TEST(MultiRhsTrisolve, DoacrossMultiMatchesSequentialMulti) {
  const sp::Csr l = sp::ilu0(gen::matrix_spe5()).l;
  const index_t n = l.rows, nrhs = 8;
  gen::SplitMix64 rng(22);
  std::vector<double> rhs(static_cast<std::size_t>(n * nrhs));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);

  std::vector<double> y_seq(static_cast<std::size_t>(n * nrhs));
  sp::trisolve_lower_seq_multi(l, rhs, y_seq, nrhs);

  core::DenseReadyTable ready(n);
  const core::Reordering r = sp::lower_solve_reordering(l);
  for (const index_t* order : {static_cast<const index_t*>(nullptr),
                               r.order.data()}) {
    std::vector<double> y_par(static_cast<std::size_t>(n * nrhs));
    sp::TrisolveOptions opts;
    opts.order = order;
    sp::trisolve_doacross_multi(pool(), l, rhs, y_par, nrhs, ready, opts);
    for (std::size_t i = 0; i < y_seq.size(); ++i) {
      ASSERT_EQ(y_seq[i], y_par[i]) << (order ? "reordered" : "source") << i;
    }
  }
}

TEST(MultiRhsTrisolve, LevelschedMultiMatchesSequentialMulti) {
  const sp::Csr l = sp::ilu0(gen::nine_point(15, 15)).l;
  const index_t n = l.rows, nrhs = 4;
  gen::SplitMix64 rng(23);
  std::vector<double> rhs(static_cast<std::size_t>(n * nrhs));
  for (auto& v : rhs) v = rng.next_double(-1.0, 1.0);

  std::vector<double> y_seq(static_cast<std::size_t>(n * nrhs));
  sp::trisolve_lower_seq_multi(l, rhs, y_seq, nrhs);

  const core::Reordering r = sp::lower_solve_reordering(l);
  std::vector<double> y_lvl(static_cast<std::size_t>(n * nrhs));
  sp::trisolve_levelsched_multi(pool(), l, rhs, y_lvl, nrhs, r);
  for (std::size_t i = 0; i < y_seq.size(); ++i) {
    ASSERT_EQ(y_seq[i], y_lvl[i]) << i;
  }
}

TEST(MultiRhsTrisolve, RejectsBadArguments) {
  const sp::Csr l = sp::ilu0(gen::five_point(4, 4)).l;
  std::vector<double> rhs(static_cast<std::size_t>(l.rows)), y = rhs;
  EXPECT_THROW(sp::trisolve_lower_seq_multi(l, rhs, y, 0),
               std::invalid_argument);
  EXPECT_THROW(sp::trisolve_lower_seq_multi(l, rhs, y, 2),  // too small
               std::invalid_argument);
  core::DenseReadyTable ready(l.rows);
  EXPECT_THROW(
      sp::trisolve_doacross_multi(pool(), l, rhs, y, 2, ready, {}),
      std::invalid_argument);
}

TEST(UpperTrisolve, DoacrossMatchesSequentialBitwise) {
  const sp::Csr u = sp::ilu0(gen::seven_point(7, 7, 7)).u;
  const auto rhs = random_rhs(u.rows, 24);
  std::vector<double> y_seq(static_cast<std::size_t>(u.rows));
  sp::trisolve_upper_seq(u, rhs, y_seq);

  const core::Reordering r = sp::upper_solve_reordering(u);
  core::DenseReadyTable ready(u.rows);
  for (const index_t* order : {static_cast<const index_t*>(nullptr),
                               r.order.data()}) {
    std::vector<double> y_par(static_cast<std::size_t>(u.rows));
    sp::TrisolveOptions opts;
    opts.order = order;
    sp::trisolve_upper_doacross(pool(), u, rhs, y_par, ready, opts);
    for (index_t i = 0; i < u.rows; ++i) {
      ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
                y_par[static_cast<std::size_t>(i)])
          << (order ? "reordered" : "source") << " row " << i;
    }
  }
}

TEST(UpperTrisolve, ReorderingIsValidSchedule) {
  const sp::Csr u = sp::ilu0(gen::matrix_spe2()).u;
  const core::Reordering r = sp::upper_solve_reordering(u);
  // Validity: every dependence (c > i in row i) sits earlier in order.
  std::vector<index_t> position(static_cast<std::size_t>(u.rows));
  for (index_t k = 0; k < u.rows; ++k) {
    position[static_cast<std::size_t>(r.order[static_cast<std::size_t>(k)])] = k;
  }
  for (index_t i = 0; i < u.rows; ++i) {
    for (index_t c : u.row_cols(i)) {
      if (c > i) {
        ASSERT_LT(position[static_cast<std::size_t>(c)],
                  position[static_cast<std::size_t>(i)])
            << "row " << i << " dep " << c;
      }
    }
  }
  // Levels: producers strictly lower level than consumers.
  const auto lv = sp::upper_solve_levels(u);
  for (index_t i = 0; i < u.rows; ++i) {
    for (index_t c : u.row_cols(i)) {
      if (c > i) {
        ASSERT_GT(lv[static_cast<std::size_t>(i)],
                  lv[static_cast<std::size_t>(c)]);
      }
    }
  }
}

TEST(MachineEmulation, AllExecutorsStayBitwiseEqualWithWorkReps) {
  // The Multimax-emulation knob folds identical arithmetic into every
  // executor, so results remain bitwise comparable at any setting.
  const sp::Csr l = sp::ilu0(gen::five_point(14, 14)).l;
  const auto rhs = random_rhs(l.rows, 31);
  const int work = 17;

  std::vector<double> y_seq(static_cast<std::size_t>(l.rows));
  sp::trisolve_lower_seq(l, rhs, y_seq, work);

  const core::Reordering r = sp::lower_solve_reordering(l);
  core::DenseReadyTable ready(l.rows);
  sp::TrisolveOptions opts;
  opts.work_reps = work;
  opts.order = r.order.data();
  std::vector<double> y_dx(static_cast<std::size_t>(l.rows));
  sp::trisolve_doacross(pool(), l, rhs, y_dx, ready, opts);

  std::vector<double> y_ls(static_cast<std::size_t>(l.rows));
  sp::trisolve_levelsched(pool(), l, rhs, y_ls, r, 0, work);

  for (index_t i = 0; i < l.rows; ++i) {
    ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
              y_dx[static_cast<std::size_t>(i)])
        << i;
    ASSERT_EQ(y_seq[static_cast<std::size_t>(i)],
              y_ls[static_cast<std::size_t>(i)])
        << i;
  }
  // And the knob does change the values relative to work_reps = 0 (it is
  // real arithmetic, not a timing no-op).
  std::vector<double> y_plain(static_cast<std::size_t>(l.rows));
  sp::trisolve_lower_seq(l, rhs, y_plain);
  bool differs = false;
  for (index_t i = 0; i < l.rows && !differs; ++i) {
    differs = y_plain[static_cast<std::size_t>(i)] !=
              y_seq[static_cast<std::size_t>(i)];
  }
  EXPECT_TRUE(differs);
}

TEST(ParTrisolve, WaitStatsShrinkWithDoconsider) {
  const sp::Csr l = sp::ilu0(gen::seven_point(12, 12, 12)).l;
  const auto rhs = random_rhs(l.rows, 7);
  std::vector<double> y(static_cast<std::size_t>(l.rows));

  sp::TrisolveOptions src;
  src.schedule = rt::Schedule::static_block();
  const auto s_src = sp::trisolve_doacross(pool(), l, rhs, y, src);

  const core::Reordering r = sp::lower_solve_reordering(l);
  sp::TrisolveOptions ord = src;
  ord.order = r.order.data();
  const auto s_ord = sp::trisolve_doacross(pool(), l, rhs, y, ord);

  // Static-block source order serializes almost everything on a stencil
  // factor; doconsider order should wait far less. Generous slack keeps
  // the assertion robust on loaded machines.
  EXPECT_LT(static_cast<double>(s_ord.wait_rounds),
            0.9 * static_cast<double>(s_src.wait_rounds) + 10000.0);
}
