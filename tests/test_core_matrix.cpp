// Cross-product correctness matrix: every executor variant x schedule x
// ordering x ready-table kind on randomized and adversarial workloads.
// The invariant everywhere: parallel result == sequential source-order
// result, bitwise.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/blocked_doacross.hpp"
#include "core/doacross.hpp"
#include "core/doconsider.hpp"
#include "core/linear_doacross.hpp"
#include "gen/random_loop.hpp"
#include "gen/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace core = pdx::core;
namespace gen = pdx::gen;
namespace rt = pdx::rt;
using pdx::index_t;

namespace {

rt::ThreadPool& pool() {
  static rt::ThreadPool p(8);
  return p;
}

std::vector<double> reference_result(const gen::RandomLoop& rl) {
  std::vector<double> y = rl.y0;
  gen::run_random_loop_seq(rl, y);
  return y;
}

void expect_equal(const std::vector<double>& want,
                  const std::vector<double>& got, const std::string& label) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << label << " offset " << i;
  }
}

}  // namespace

struct MatrixCase {
  std::uint64_t seed;
  rt::Schedule sched;
  bool reorder;
};

class EngineMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EngineMatrix, DenseReadyTable) {
  const MatrixCase c = GetParam();
  gen::RandomLoopParams p{.n = 500, .value_space = 800, .min_reads = 0,
                          .max_reads = 5, .dep_bias = 0.7};
  const gen::RandomLoop rl = gen::make_random_loop(p, c.seed);
  const auto want = reference_result(rl);

  core::Reordering r;
  core::DoacrossOptions opts;
  opts.schedule = c.sched;
  if (c.reorder) {
    r = core::doconsider_order(gen::random_loop_deps(rl));
    opts.order = r.order.data();
  }

  std::vector<double> y = rl.y0;
  core::DoacrossEngine<double> eng(pool(), rl.value_space);
  eng.run(std::span<const index_t>(rl.writer), std::span<double>(y),
          [&rl](auto& it) { gen::random_loop_body(rl, it); }, opts);
  expect_equal(want, y, "dense");
}

TEST_P(EngineMatrix, EpochReadyTable) {
  const MatrixCase c = GetParam();
  gen::RandomLoopParams p{.n = 500, .value_space = 800, .min_reads = 0,
                          .max_reads = 5, .dep_bias = 0.7};
  const gen::RandomLoop rl = gen::make_random_loop(p, c.seed);
  const auto want = reference_result(rl);

  core::Reordering r;
  core::DoacrossOptions opts;
  opts.schedule = c.sched;
  if (c.reorder) {
    r = core::doconsider_order(gen::random_loop_deps(rl));
    opts.order = r.order.data();
  }

  std::vector<double> y = rl.y0;
  core::DoacrossEngine<double, core::EpochReadyTable> eng(pool(),
                                                          rl.value_space);
  eng.run(std::span<const index_t>(rl.writer), std::span<double>(y),
          [&rl](auto& it) { gen::random_loop_body(rl, it); }, opts);
  expect_equal(want, y, "epoch");
}

TEST_P(EngineMatrix, BlockedDenseAndHash) {
  const MatrixCase c = GetParam();
  if (c.reorder) GTEST_SKIP() << "strip-mined variant has no reordering";
  gen::RandomLoopParams p{.n = 500, .value_space = 800, .min_reads = 0,
                          .max_reads = 5, .dep_bias = 0.7};
  const gen::RandomLoop rl = gen::make_random_loop(p, c.seed);
  const auto want = reference_result(rl);

  core::BlockedOptions opts;
  opts.schedule = c.sched;

  std::vector<double> y1 = rl.y0;
  core::BlockedDoacross<double> dense(pool(), rl.value_space);
  dense.run(std::span<const index_t>(rl.writer), std::span<double>(y1),
            [&rl](auto& it) { gen::random_loop_body(rl, it); }, 64, opts);
  expect_equal(want, y1, "blocked-dense");

  std::vector<double> y2 = rl.y0;
  core::CompactBlockedDoacross<double> hash(pool(), rl.value_space);
  hash.run(std::span<const index_t>(rl.writer), std::span<double>(y2),
           [&rl](auto& it) { gen::random_loop_body(rl, it); }, 64, opts);
  expect_equal(want, y2, "blocked-hash");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineMatrix,
    ::testing::Values(
        MatrixCase{201, rt::Schedule::static_block(), false},
        MatrixCase{202, rt::Schedule::static_block(), true},
        MatrixCase{203, rt::Schedule::static_cyclic(1), false},
        MatrixCase{204, rt::Schedule::static_cyclic(1), true},
        MatrixCase{205, rt::Schedule::static_cyclic(7), false},
        MatrixCase{206, rt::Schedule::dynamic(1), true},
        MatrixCase{207, rt::Schedule::dynamic(16), false},
        MatrixCase{208, rt::Schedule::dynamic(0), true}));

// ---------------------------------------------------------------------
// Adversarial shapes.
// ---------------------------------------------------------------------

TEST(Adversarial, ReverseWriterPermutation) {
  // writer[i] = n-1-i: iteration 0 writes the LAST offset. Reads of
  // offset k resolve to iteration n-1-k; mixture of true/anti deps
  // depends on sign of (n-1-k) - i.
  const index_t n = 400;
  std::vector<index_t> writer(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) writer[static_cast<std::size_t>(i)] = n - 1 - i;
  auto body = [n](auto& it) {
    const index_t i = it.index();
    // Read the offset written by iteration i-1 (true dep) and by i+1
    // (antidep), clamped.
    if (i > 0) it.lhs() += it.read(n - i);
    if (i + 1 < n) it.lhs() += it.read(n - 2 - i);
  };
  std::vector<double> y_ref(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    y_ref[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.25;
  }
  std::vector<double> y_par = y_ref;
  core::doacross_reference<double>(writer, std::span<double>(y_ref), body);
  core::DoacrossEngine<double> eng(pool(), n);
  eng.run(writer, std::span<double>(y_par), body);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(y_ref[static_cast<std::size_t>(i)],
              y_par[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(Adversarial, EveryIterationReadsOffsetZero) {
  // Offset 0 is written by iteration 0; every later iteration has a true
  // dependence on it — a fan-out hot spot hammering one ready flag.
  const index_t n = 2000;
  std::vector<index_t> writer(static_cast<std::size_t>(n));
  std::iota(writer.begin(), writer.end(), index_t{0});
  auto body = [](auto& it) {
    const index_t i = it.index();
    it.lhs() = (i == 0) ? 42.0 : it.read(0) + static_cast<double>(i);
  };
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  core::DoacrossEngine<double> eng(pool(), n);
  core::DoacrossOptions opts;
  opts.schedule = rt::Schedule::dynamic(4);
  eng.run(writer, std::span<double>(y), body, opts);
  for (index_t i = 1; i < n; ++i) {
    ASSERT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                     42.0 + static_cast<double>(i));
  }
}

TEST(Adversarial, LongestPossibleChainUnderEverySchedule) {
  // Full serial chain through the writer permutation (i reads writer of
  // i-1). Any scheduling policy must survive it without deadlock and
  // produce exact results.
  const index_t n = 600;
  gen::SplitMix64 rng(99);
  std::vector<index_t> writer = gen::random_injection(n, 2 * n, rng);
  auto body = [&writer](auto& it) {
    const index_t i = it.index();
    if (i > 0) {
      it.lhs() = it.read(writer[static_cast<std::size_t>(i - 1)]) + 1.0;
    } else {
      it.lhs() = 0.0;
    }
  };
  std::vector<double> y0(static_cast<std::size_t>(2 * n), 0.0);
  for (const auto& sched :
       {rt::Schedule::static_block(), rt::Schedule::static_cyclic(1),
        rt::Schedule::dynamic(1)}) {
    std::vector<double> y = y0;
    core::DoacrossEngine<double> eng(pool(), 2 * n);
    core::DoacrossOptions opts;
    opts.schedule = sched;
    eng.run(writer, std::span<double>(y), body, opts);
    ASSERT_DOUBLE_EQ(y[static_cast<std::size_t>(
                         writer[static_cast<std::size_t>(n - 1)])],
                     static_cast<double>(n - 1))
        << rt::to_string(sched);
  }
}

TEST(Adversarial, BoundaryOffsetsZeroAndMax) {
  const index_t space = 64;
  std::vector<index_t> writer = {0, space - 1};
  auto body = [space](auto& it) {
    if (it.index() == 1) {
      it.lhs() = it.read(0) * 2.0;  // true dep on the first offset
    } else {
      it.lhs() = 21.0;
    }
  };
  std::vector<double> y(static_cast<std::size_t>(space), 0.0);
  core::DoacrossEngine<double> eng(pool(), space);
  eng.run(writer, std::span<double>(y), body);
  EXPECT_DOUBLE_EQ(y[0], 21.0);
  EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(space - 1)], 42.0);
}

TEST(Adversarial, LinearVariantAllSupportedStrides) {
  // Strides 1..5 cover the specialized (1..4) and runtime (5) paths.
  for (index_t c = 1; c <= 5; ++c) {
    const index_t n = 300;
    const index_t d = 3;
    const core::LinearWriter w{.c = c, .d = d, .n = n};
    std::vector<double> y0(static_cast<std::size_t>(w.written_extent()) + 8);
    for (std::size_t i = 0; i < y0.size(); ++i) {
      y0[i] = static_cast<double>(i % 11) * 0.5;
    }
    auto body = [&w](auto& it) {
      const index_t i = it.index();
      it.lhs() += 1.0;
      if (i > 0) it.lhs() += it.read(w(i - 1));  // true dep
      it.lhs() += it.read(w(i) + 1 == w.written_extent()
                              ? w(i)
                              : w(i) + 1);  // gap or self
    };
    std::vector<index_t> writer(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) writer[static_cast<std::size_t>(i)] = w(i);
    std::vector<double> y_ref = y0;
    core::doacross_reference<double>(writer, std::span<double>(y_ref), body);

    std::vector<double> y_lin = y0;
    core::LinearDoacross<double> eng(pool());
    eng.run(w, std::span<double>(y_lin), body);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_ref[i], y_lin[i]) << "stride " << c << " offset " << i;
    }
  }
}

TEST(Adversarial, ManyLoopsInterleavedOnSharedEngine) {
  // Two different loops alternating on one engine: the arena-reuse
  // invariant must hold between heterogeneous invocations.
  const index_t n = 300;
  gen::RandomLoopParams pa{.n = n, .value_space = 500, .min_reads = 1,
                           .max_reads = 3, .dep_bias = 0.8};
  gen::RandomLoopParams pb{.n = 2 * n, .value_space = 900, .min_reads = 0,
                           .max_reads = 2, .dep_bias = 0.3};
  const gen::RandomLoop a = gen::make_random_loop(pa, 1001);
  const gen::RandomLoop b = gen::make_random_loop(pb, 1002);

  std::vector<double> ya_ref = a.y0, yb_ref = b.y0;
  std::vector<double> ya = a.y0, yb = b.y0;
  core::DoacrossEngine<double> eng(pool(), 900);
  for (int rep = 0; rep < 4; ++rep) {
    gen::run_random_loop_seq(a, ya_ref);
    eng.run(std::span<const index_t>(a.writer), std::span<double>(ya),
            [&a](auto& it) { gen::random_loop_body(a, it); });
    gen::run_random_loop_seq(b, yb_ref);
    eng.run(std::span<const index_t>(b.writer), std::span<double>(yb),
            [&b](auto& it) { gen::random_loop_body(b, it); });
  }
  for (std::size_t i = 0; i < ya_ref.size(); ++i) ASSERT_EQ(ya_ref[i], ya[i]);
  for (std::size_t i = 0; i < yb_ref.size(); ++i) ASSERT_EQ(yb_ref[i], yb[i]);
}
